package exec

import (
	"fmt"

	"github.com/ooc-hpf/passion/internal/bufpool"
	"github.com/ooc-hpf/passion/internal/mp"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/plan"
)

// shiftTagBase tags the boundary-column exchange messages.
const shiftTagBase = 101

// runShiftEwise executes a FORALL with shifted column references: first
// the boundary-column exchange with the neighboring processors, then a
// slab sweep with column halos.
func (in *interp) runShiftEwise(n *plan.ShiftEwise) error {
	return in.runShiftCore(n.Out, collectShiftInputs(n.Expr, nil),
		n.Lo, n.Hi, n.GhostLeft, n.GhostRight, n.Expr.Ops(),
		func(c, rows, localCols, h0 int, halos map[string]*oocarray.ICLA, ghosts map[string][2][]float64) ([]float64, error) {
			return in.evalShiftColumn(n.Expr, c, rows, localCols, h0, halos, ghosts)
		})
}

// shiftEval evaluates the FORALL's expression for one output local
// column, returning a pooled column the caller copies and releases.
type shiftEval func(c, rows, localCols, h0 int, halos map[string]*oocarray.ICLA, ghosts map[string][2][]float64) ([]float64, error)

// runShiftCore is the shifted-FORALL engine shared by the tree walk and
// the bytecode executor: ghost exchange over inputs (in first-use order —
// the order fixes the message tags), then the slab sweep with column
// halos, calling eval per in-bounds column. opsPerElem is charged to the
// compute clock for every evaluated column, phantom or not.
func (in *interp) runShiftCore(outName string, inputs []string, lo, hi, ghostLeft, ghostRight, opsPerElem int, eval shiftEval) error {
	out, err := in.array(outName)
	if err != nil {
		return err
	}
	rows := out.LocalRows()
	localCols := out.LocalCols()

	// Phase 1: ghost exchange. ghosts[name][0] holds the GhostLeft
	// columns just below this block, ghosts[name][1] the GhostRight
	// columns just above it (column-major, rows x width).
	ghosts := make(map[string][2][]float64, len(inputs))
	rank, size := in.proc.Rank(), in.proc.Size()
	for gi, name := range inputs {
		arr, err := in.array(name)
		if err != nil {
			return err
		}
		if arr.LocalCols() != localCols || arr.LocalRows() != rows {
			return fmt.Errorf("exec: shift input %q shape differs from output", name)
		}
		tag := shiftTagBase + 2*gi
		// Send my last ghostLeft columns rightward (they are the right
		// neighbor's left ghost) and my first ghostRight columns
		// leftward.
		if ghostLeft > 0 && rank < size-1 {
			sec, err := arr.ReadSection(0, localCols-ghostLeft, rows, ghostLeft)
			if err != nil {
				return err
			}
			in.proc.Send(rank+1, tag, sec.Data)
			arr.Recycle(sec)
		}
		if ghostRight > 0 && rank > 0 {
			sec, err := arr.ReadSection(0, 0, rows, ghostRight)
			if err != nil {
				return err
			}
			in.proc.Send(rank-1, tag+1, sec.Data)
			arr.Recycle(sec)
		}
		var g [2][]float64
		if ghostLeft > 0 && rank > 0 {
			g[0] = in.proc.Recv(rank-1, tag)
		}
		if ghostRight > 0 && rank < size-1 {
			g[1] = in.proc.Recv(rank+1, tag+1)
		}
		ghosts[name] = g
	}
	defer func() {
		for _, g := range ghosts {
			mp.ReleaseBuf(g[0])
			mp.ReleaseBuf(g[1])
		}
	}()

	// Phase 2: slab sweep with column halos.
	slb := in.slabbings[outName]
	colMap := out.Dist().Dims[1]
	for idx := 0; idx < slb.Count; idx++ {
		// The output slab's previous contents are the base: columns
		// outside [lo, hi] keep them.
		staging, err := out.ReadSlab(slb, idx)
		if err != nil {
			return err
		}
		c0, width := staging.ColOff, staging.Cols
		// Halo sections of every input, clipped to the local block.
		h0 := c0 - ghostLeft
		if h0 < 0 {
			h0 = 0
		}
		hEnd := c0 + width + ghostRight
		if hEnd > localCols {
			hEnd = localCols
		}
		halos := make(map[string]*oocarray.ICLA, len(inputs))
		for _, name := range inputs {
			arr, err := in.array(name)
			if err != nil {
				return err
			}
			sec, err := arr.ReadSection(0, h0, rows, hEnd-h0)
			if err != nil {
				return err
			}
			halos[name] = sec
		}
		for c := c0; c < c0+width; c++ {
			k := colMap.ToGlobal(rank, c)
			if k < lo || k > hi {
				continue
			}
			col, err := eval(c, rows, localCols, h0, halos, ghosts)
			if err != nil {
				return err
			}
			if !in.phantom {
				copy(staging.Col(c-c0), col)
			}
			bufpool.PutF64(col)
			in.proc.Compute(int64(opsPerElem) * int64(rows))
		}
		if err := out.WriteSection(staging); err != nil {
			return err
		}
		out.Recycle(staging)
		for name, sec := range halos {
			in.arrays[name].Recycle(sec)
		}
	}
	return nil
}

// evalShiftColumn evaluates the expression for output local column c.
func (in *interp) evalShiftColumn(e plan.EExpr, c, rows, localCols, h0 int,
	halos map[string]*oocarray.ICLA, ghosts map[string][2][]float64) ([]float64, error) {
	switch e := e.(type) {
	case *plan.EConst:
		// Pooled columns are not cleared: in phantom mode the contents are
		// never read (the staging copy is skipped), and otherwise every
		// element is written below.
		col := bufpool.GetF64(rows)
		if !in.phantom {
			for i := range col {
				col[i] = e.V
			}
		}
		return col, nil
	case *plan.EBufShift:
		col := bufpool.GetF64(rows)
		if in.phantom {
			return col, nil
		}
		src := c + e.Shift
		switch {
		case src < 0: // left ghost
			g := ghosts[e.Array][0]
			off := (len(g)/rows + src) * rows // src in [-L, -1]
			if off < 0 || off+rows > len(g) {
				return nil, fmt.Errorf("exec: shift column %d of %q outside the left ghost", src, e.Array)
			}
			copy(col, g[off:off+rows])
		case src >= localCols: // right ghost
			g := ghosts[e.Array][1]
			off := (src - localCols) * rows
			if off < 0 || off+rows > len(g) {
				return nil, fmt.Errorf("exec: shift column %d of %q outside the right ghost", src, e.Array)
			}
			copy(col, g[off:off+rows])
		default: // local, through the halo section
			h := halos[e.Array]
			copy(col, h.Col(src-h0))
		}
		return col, nil
	case *plan.EBin:
		l, err := in.evalShiftColumn(e.L, c, rows, localCols, h0, halos, ghosts)
		if err != nil {
			return nil, err
		}
		r, err := in.evalShiftColumn(e.R, c, rows, localCols, h0, halos, ghosts)
		if err != nil {
			bufpool.PutF64(l)
			return nil, err
		}
		defer bufpool.PutF64(r)
		if !in.phantom {
			switch e.Op {
			case '+':
				for i := range l {
					l[i] += r[i]
				}
			case '-':
				for i := range l {
					l[i] -= r[i]
				}
			case '*':
				for i := range l {
					l[i] *= r[i]
				}
			case '/':
				for i := range l {
					l[i] /= r[i]
				}
			default:
				return nil, fmt.Errorf("exec: unknown operator %q", e.Op)
			}
		}
		return l, nil
	default:
		return nil, fmt.Errorf("exec: unsupported expression %T in shifted FORALL", e)
	}
}

// collectShiftInputs gathers the distinct arrays referenced by the
// expression, in first-use order.
func collectShiftInputs(e plan.EExpr, acc []string) []string {
	switch e := e.(type) {
	case *plan.EBufShift:
		for _, name := range acc {
			if name == e.Array {
				return acc
			}
		}
		return append(acc, e.Array)
	case *plan.EBin:
		return collectShiftInputs(e.R, collectShiftInputs(e.L, acc))
	default:
		return acc
	}
}
