package exec

import (
	"bytes"
	"testing"
	"time"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// streamScenarios are the acceptance matrix for live streaming: the
// NDJSON spans written as the run progresses must be the exact span
// sequence of the buffered Chrome export, and both must replay to the
// accounted statistics to the digit.
func streamScenarios() []reconcileScenario {
	return []reconcileScenario{
		{
			name:   "gaxpy/row-slab",
			source: hpf.GaxpySource,
			copts:  gaxpyScenarioOpts("row-slab"),
			fills:  sweepFills(),
		},
		{
			name:   "transpose/two-phase",
			source: hpf.TransposeSource,
			copts:  compiler.Options{N: 64, Procs: 4, MemElems: 16 * 64, Force: "two-phase"},
			fills: map[string]func(int, int) float64{
				"a": func(gi, gj int) float64 { return float64(gi*64 + gj + 1) },
			},
		},
		{
			name:   "stencil/shift-exchange",
			source: shiftSource,
			copts:  compiler.Options{N: 32, Procs: 4, MemElems: 32 * 4},
			fills:  map[string]func(int, int) float64{"x": shiftFillX},
		},
	}
}

func TestStreamedSpansReconcileWithBufferedExport(t *testing.T) {
	for _, sc := range streamScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			res, err := compiler.CompileSource(sc.source, sc.copts)
			if err != nil {
				t.Fatal(err)
			}
			mach := sim.Delta(res.Program.Procs)

			var stream bytes.Buffer
			opts := sc.options
			opts.Fill = sc.fills
			opts.Trace = trace.NewTracer(res.Program.Procs)
			opts.Trace.SetSink(trace.NewNDJSONSink(&stream), 0)

			out, err := Run(res.Program, mach, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := opts.Trace.CloseSink(); err != nil {
				t.Fatal(err)
			}
			if d := opts.Trace.Dropped(); d != 0 {
				t.Fatalf("tracer dropped %d spans; exactness is void", d)
			}

			streamed, sprocs, sdropped, err := trace.ParseNDJSON(&stream)
			if err != nil {
				t.Fatal(err)
			}
			if sprocs != res.Program.Procs || sdropped != 0 {
				t.Fatalf("stream parsed as procs=%d dropped=%d, want %d, 0", sprocs, sdropped, res.Program.Procs)
			}

			var chrome bytes.Buffer
			if err := opts.Trace.ExportChromeTrace(&chrome); err != nil {
				t.Fatal(err)
			}
			buffered, _, bdropped, err := trace.ParseChromeTraceInfo(chrome.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			if bdropped != 0 {
				t.Fatalf("buffered export records %d drops, want 0", bdropped)
			}
			if len(streamed) != len(buffered) {
				t.Fatalf("stream carries %d spans, buffered export %d", len(streamed), len(buffered))
			}
			for i := range buffered {
				if streamed[i] != buffered[i] {
					t.Fatalf("span %d differs between stream and export:\nstream %+v\nexport %+v", i, streamed[i], buffered[i])
				}
			}

			// And both reconcile with the accounted statistics, exactly.
			if err := trace.Reconcile(streamed, out.Stats, out.PerArray); err != nil {
				t.Fatalf("streamed spans do not replay to the statistics:\n%v", err)
			}
		})
	}
}

// slowSink sleeps on every span — slower than any burst the run
// produces through a tiny queue, so drops are guaranteed.
type slowSink struct{ emitted int64 }

func (s *slowSink) Emit(rank int, sp Span) {
	time.Sleep(200 * time.Microsecond)
	s.emitted++
}
func (s *slowSink) Flush() error { return nil }
func (s *slowSink) Close() error { return nil }

// Span aliases trace.Span for the local sink implementations.
type Span = trace.Span

// TestSlowSinkDoesNotPerturbSimulation pins the decoupling between wall
// time and simulated time: a sink too slow to keep up drops spans (with
// exact accounting) but leaves the simulated clock, the statistics, and
// every counter bit-identical to the sink-less run.
func TestSlowSinkDoesNotPerturbSimulation(t *testing.T) {
	res, err := compiler.CompileSource(hpf.GaxpySource, gaxpyScenarioOpts("row-slab"))
	if err != nil {
		t.Fatal(err)
	}
	mach := sim.Delta(res.Program.Procs)

	base, err := Run(res.Program, mach, Options{Fill: sweepFills()})
	if err != nil {
		t.Fatal(err)
	}

	sink := &slowSink{}
	tr := trace.NewTracer(res.Program.Procs)
	tr.SetSink(sink, 2)
	slow, err := Run(res.Program, mach, Options{Fill: sweepFills(), Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CloseSink(); err != nil {
		t.Fatal(err)
	}

	if got, want := slow.Stats.ElapsedSeconds(), base.Stats.ElapsedSeconds(); got != want {
		t.Fatalf("slow sink changed sim_s: %v != %v", got, want)
	}
	total := int64(len(tr.Spans()))
	if sink.emitted+tr.SinkDropped() != total {
		t.Fatalf("sink saw %d + dropped %d != %d spans emitted", sink.emitted, tr.SinkDropped(), total)
	}
	if tr.SinkDropped() == 0 {
		t.Fatal("expected the slow sink to drop spans through a queue of 2")
	}
}
