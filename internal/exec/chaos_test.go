package exec

import (
	"errors"
	"fmt"
	"testing"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/matrix"
	"github.com/ooc-hpf/passion/internal/sim"
)

// chaosProgram compiles the GAXPY instance used by the chaos harness,
// sized so both strategies strip-mine into several slabs.
func chaosProgram(t *testing.T, force string) *compiler.Result {
	t.Helper()
	res, err := compiler.CompileSource(hpf.GaxpySource,
		compiler.Options{N: 32, Procs: 4, MemElems: 300, Force: force})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// baselineC runs the program fault-free and returns the result matrix.
func baselineC(t *testing.T, res *compiler.Result) *matrix.Matrix {
	t.Helper()
	out, err := Run(res.Program, sim.Delta(res.Program.Procs), Options{Fill: sweepFills()})
	if err != nil {
		t.Fatal(err)
	}
	c, err := out.ReadArray("c")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func matricesIdentical(a, b *matrix.Matrix) error {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return fmt.Errorf("shape %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return fmt.Errorf("element %d: %g != %g", i, a.Data[i], b.Data[i])
		}
	}
	return nil
}

// TestChaosTransientRunMatchesFaultFree (acceptance a): a GAXPY run with
// transient-fault probability > 0 completes with output bitwise identical
// to the fault-free run, with retry counters > 0 in trace.IOStats.
func TestChaosTransientRunMatchesFaultFree(t *testing.T) {
	for _, force := range []string{"row-slab", "column-slab"} {
		t.Run(force, func(t *testing.T) {
			res := chaosProgram(t, force)
			want := baselineC(t, res)

			chaos := iosim.NewChaosFS(iosim.NewMemFS(), iosim.ChaosConfig{
				Seed: 1, PTransient: 0.03,
			})
			out, err := Run(res.Program, sim.Delta(res.Program.Procs), Options{
				FS:         chaos,
				Fill:       sweepFills(),
				Resilience: iosim.NewResilience(iosim.RetryPolicy{MaxRetries: 12, BaseBackoff: 1e-3, MaxBackoff: 8e-3}),
			})
			if err != nil {
				t.Fatalf("transient faults must be absorbed by retries: %v", err)
			}
			if c := chaos.Counts(); c.Transient == 0 {
				t.Fatalf("the chaos model injected nothing: %+v", c)
			}
			got, err := out.ReadArray("c")
			if err != nil {
				t.Fatal(err)
			}
			if err := matricesIdentical(got, want); err != nil {
				t.Fatalf("chaos run diverged from fault-free run: %v", err)
			}
			if io := out.Stats.TotalIO(); io.Retries == 0 || io.RetrySeconds <= 0 {
				t.Fatalf("retries not surfaced in IOStats: %+v", io)
			}
		})
	}
}

// TestChaosCorruptionNeverSilent (acceptance c): injected bit-corruption
// on LAF reads is detected by checksum and repaired by retry; the output
// is still bitwise identical to the fault-free run.
func TestChaosCorruptionNeverSilent(t *testing.T) {
	res := chaosProgram(t, "")
	want := baselineC(t, res)

	chaos := iosim.NewChaosFS(iosim.NewMemFS(), iosim.ChaosConfig{
		Seed: 5, PCorrupt: 0.05,
	})
	out, err := Run(res.Program, sim.Delta(res.Program.Procs), Options{
		FS:         chaos,
		Fill:       sweepFills(),
		Resilience: iosim.NewResilience(iosim.RetryPolicy{MaxRetries: 12, BaseBackoff: 1e-3, MaxBackoff: 8e-3}),
	})
	if err != nil {
		t.Fatalf("read-path corruption must be repaired by retry: %v", err)
	}
	if c := chaos.Counts(); c.Corruptions == 0 {
		t.Fatalf("the chaos model injected no corruption: %+v", c)
	}
	got, err := out.ReadArray("c")
	if err != nil {
		t.Fatal(err)
	}
	if err := matricesIdentical(got, want); err != nil {
		t.Fatalf("corruption silently propagated into the result: %v", err)
	}
}

// TestResumeAfterKillBitwiseIdentical (acceptance b): a checkpointed run
// killed mid-execution resumes from its last consistent checkpoint and
// produces results bitwise identical to an uninterrupted run.
func TestResumeAfterKillBitwiseIdentical(t *testing.T) {
	for _, force := range []string{"row-slab", "column-slab"} {
		t.Run(force, func(t *testing.T) {
			res := chaosProgram(t, force)
			want := baselineC(t, res)
			mach := sim.Delta(res.Program.Procs)
			ckpt := &CheckpointSpec{Every: 1}

			// Measure the op count of an uninterrupted checkpointed run.
			probe := iosim.NewFaultFS(iosim.NewMemFS(), 1<<30, nil)
			if _, err := Run(res.Program, mach, Options{FS: probe, Fill: sweepFills(), Checkpoint: ckpt}); err != nil {
				t.Fatal(err)
			}
			total := 1<<30 - probe.Remaining()

			// Kill near the end: every operation past the budget fails
			// permanently, on all processors at once. Scan downward from
			// the full budget for the latest kill point that both fails
			// the run and leaves a committed checkpoint behind (a kill can
			// land mid-commit, in which case some rank has no manifest).
			var mem *iosim.MemFS
			var out *Result
			for k := total - 1; k >= 1; k-- {
				m := iosim.NewMemFS()
				killed := iosim.NewFaultFS(m, k, nil)
				_, err := Run(res.Program, mach, Options{FS: killed, Fill: sweepFills(), Checkpoint: ckpt})
				if err == nil {
					continue // budget k sufficed; kill earlier
				}
				// The LAF files must survive the failure (they are the
				// restart state), unlike the non-checkpointed error path.
				if len(m.Names()) == 0 {
					t.Fatalf("k=%d: checkpointed failure must keep its files for Resume", k)
				}
				// Resume against the recovered store (the transient outage
				// is over: the wrapper is gone, the files are intact).
				r, err := Resume(res.Program, mach, Options{FS: m, Fill: sweepFills(), Checkpoint: ckpt})
				if errors.Is(err, ErrNoCheckpoint) {
					continue // killed before the first commit
				}
				if err != nil {
					t.Fatalf("k=%d: Resume: %v", k, err)
				}
				mem, out = m, r
				break
			}
			if out == nil {
				t.Fatal("no kill point produced a resumable checkpoint")
			}
			got, err := out.ReadArray("c")
			if err != nil {
				t.Fatal(err)
			}
			if err := matricesIdentical(got, want); err != nil {
				t.Fatalf("resumed run diverged from uninterrupted run: %v", err)
			}
			// Close removes data and checkpoint artifacts.
			if err := out.Close(); err != nil {
				t.Fatal(err)
			}
			if names := mem.Names(); len(names) != 0 {
				t.Fatalf("Close left files behind: %v", names)
			}
		})
	}
}

// TestResumeSweepEveryKillPoint hardens acceptance (b): for a sweep of
// kill points across the whole run, every killed execution either resumes
// to the bitwise-correct result or reports ErrNoCheckpoint (killed before
// the first commit), in which case a fresh run completes.
func TestResumeSweepEveryKillPoint(t *testing.T) {
	res := chaosProgram(t, "row-slab")
	want := baselineC(t, res)
	mach := sim.Delta(res.Program.Procs)
	ckpt := &CheckpointSpec{Every: 1}

	probe := iosim.NewFaultFS(iosim.NewMemFS(), 1<<30, nil)
	if _, err := Run(res.Program, mach, Options{FS: probe, Fill: sweepFills(), Checkpoint: ckpt}); err != nil {
		t.Fatal(err)
	}
	total := 1<<30 - probe.Remaining()

	step := total / 16
	if step < 1 {
		step = 1
	}
	resumed, restarted := 0, 0
	for k := 1; k < total; k += step {
		mem := iosim.NewMemFS()
		killed := iosim.NewFaultFS(mem, k, nil)
		if _, err := Run(res.Program, mach, Options{FS: killed, Fill: sweepFills(), Checkpoint: ckpt}); err == nil {
			continue // budget k happened to suffice
		}
		out, err := Resume(res.Program, mach, Options{FS: mem, Fill: sweepFills(), Checkpoint: ckpt})
		switch {
		case err == nil:
			resumed++
		case errors.Is(err, ErrNoCheckpoint):
			// Killed before the first commit: restart from scratch.
			restarted++
			out, err = Run(res.Program, mach, Options{FS: iosim.NewMemFS(), Fill: sweepFills(), Checkpoint: ckpt})
			if err != nil {
				t.Fatalf("k=%d: fresh restart failed: %v", k, err)
			}
		default:
			t.Fatalf("k=%d: Resume failed with %v", k, err)
		}
		got, err := out.ReadArray("c")
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := matricesIdentical(got, want); err != nil {
			t.Fatalf("k=%d: recovered run diverged: %v", k, err)
		}
	}
	if resumed == 0 {
		t.Fatalf("no kill point exercised an actual resume (resumed=%d restarted=%d)", resumed, restarted)
	}
}
