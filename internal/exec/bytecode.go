package exec

import (
	"fmt"

	"github.com/ooc-hpf/passion/internal/bufpool"
	"github.com/ooc-hpf/passion/internal/bytecode"
	"github.com/ooc-hpf/passion/internal/collio"
	"github.com/ooc-hpf/passion/internal/mp"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/trace"
)

// bcExec executes a compiled opcode stream for one rank. Where the tree
// walk resolves every name through a map on every node visit, bcExec
// indexes flat slot tables the compiler laid out: vars, bufs and vecs by
// slot, arrays (with their slabbings, writers, staging and auto-staging
// state) by table index, prefetch readers by reader slot. Semantics are
// the tree walk's, operation for operation: every error condition,
// checkpoint cursor, message tag and float operation happens in the same
// order with the same values, so a bytecode run's results, statistics and
// trace reconcile bitwise with the tree-walk run's.
type bcExec struct {
	in *interp
	bc *bytecode.Program

	// Per array-table index, resolved once at construction.
	arrays  []*oocarray.Array
	slabs   []oocarray.Slabbing
	writers []*oocarray.SlabWriter
	staging []*oocarray.ICLA
	autoOn  []bool
	autoIdx []int

	// Slot tables.
	vars []int
	bufs []*oocarray.ICLA
	vecs [][]float64

	// Prefetch readers, one slot per stream-marked LOAD_SLAB.
	readers    []*oocarray.SlabReader
	readerNext []int

	// frames is the live loop stack.
	frames []bcFrame

	// shiftInputs caches, per expression program, the distinct arrays its
	// shifted reads reference in first-use order: the ghost-exchange
	// order, which fixes the message tags and must match the tree walk's.
	shiftInputs [][]string

	// estack is the expression evaluation scratch stack, sized once to
	// the deepest expression in the program.
	estack [][]float64
}

type bcFrame struct {
	varSlot  int32
	loopPC   int32
	ckptNode int32
	count    int
	v        int
}

// runBytecode executes the compiled stream from the resume cursor
// (startNode, startIter); (0,0) is a fresh run. It is the bytecode
// counterpart of runTop.
func (in *interp) runBytecode(bc *bytecode.Program, startNode, startIter int) error {
	bce, err := newBCExec(in, bc)
	if err != nil {
		return err
	}
	in.bce = bce
	return bce.run(startNode, startIter)
}

// newBCExec resolves the program's tables against the rank's initialized
// arrays and adopts any state a checkpoint restore left in the
// interpreter's maps (staging buffers, auto-staging cursors).
func newBCExec(in *interp, bc *bytecode.Program) (*bcExec, error) {
	na := len(bc.Arrays)
	b := &bcExec{
		in:          in,
		bc:          bc,
		arrays:      make([]*oocarray.Array, na),
		slabs:       make([]oocarray.Slabbing, na),
		writers:     make([]*oocarray.SlabWriter, na),
		staging:     make([]*oocarray.ICLA, na),
		autoOn:      make([]bool, na),
		autoIdx:     make([]int, na),
		vars:        make([]int, len(bc.VarNames)),
		bufs:        make([]*oocarray.ICLA, len(bc.BufNames)),
		vecs:        make([][]float64, len(bc.VecNames)),
		readers:     make([]*oocarray.SlabReader, bc.Readers),
		readerNext:  make([]int, bc.Readers),
		shiftInputs: make([][]string, len(bc.Exprs)),
		estack:      make([][]float64, 0, bc.MaxExprDepth()),
	}
	for i, spec := range bc.Arrays {
		arr, ok := in.arrays[spec.Name]
		if !ok {
			return nil, fmt.Errorf("exec: bytecode array %q missing from the run", spec.Name)
		}
		b.arrays[i] = arr
		b.slabs[i] = in.slabbings[spec.Name]
		b.writers[i] = in.writers[spec.Name]
		if s, ok := in.staging[spec.Name]; ok {
			b.staging[i] = s
		}
		b.autoOn[i] = in.auto[spec.Name]
		if idx, ok := in.autoIdx[spec.Name]; ok {
			b.autoIdx[i] = idx
		}
	}
	for i, code := range bc.Exprs {
		var names []string
		for _, ins := range code {
			if ins.Op != bytecode.EPushShift {
				continue
			}
			name := bc.Arrays[ins.A].Name
			dup := false
			for _, n := range names {
				if n == name {
					dup = true
					break
				}
			}
			if !dup {
				names = append(names, name)
			}
		}
		b.shiftInputs[i] = names
	}
	return b, nil
}

// run is the fetch-decode loop. Control opcodes are handled inline; plan
// opcodes dispatch to their handlers. Every instruction is an op
// boundary for cancellation, a superset of the tree walk's plan-node
// boundaries; on the plain path the check is a constant-nil load.
func (b *bcExec) run(startNode, startIter int) error {
	in, bc := b.in, b.bc
	code := bc.Code
	pc := int32(0)
	resumeLoopPC := int32(-1)
	pendingFirst := 0
	if startNode != 0 || startIter != 0 {
		if startNode < 0 || startNode >= len(bc.NodePC) {
			return fmt.Errorf("exec: checkpoint cursor node %d outside the program", startNode)
		}
		pc = bc.NodePC[startNode]
		if startIter > 0 {
			// The iteration cursor applies to the loop instruction right
			// after the resumed node's NODE_ENTER (and only a LOOP_CKPT
			// may carry one — only SumStore loops record iteration
			// cursors). A cursor pointing into any other shape is foreign.
			resumeLoopPC = pc + 1
			pendingFirst = startIter
		}
	}
	var nodeStart float64
	for int(pc) < len(code) {
		if err := in.ctx.Err(); err != nil {
			return fmt.Errorf("cancelled at op boundary: %w", err)
		}
		ins := &code[pc]
		switch ins.Op {
		case bytecode.OpCkptInit:
			if in.ckptSpec != nil && !in.statsRestored {
				if err := b.checkpoint(0, 0); err != nil {
					return err
				}
			}
			pc++

		case bytecode.OpNodeEnter:
			nodeStart = in.proc.Clock().Seconds()
			pc++

		case bytecode.OpNodeExit:
			if tr := in.proc.Tracer(); tr != nil {
				if end := in.proc.Clock().Seconds(); end > nodeStart {
					tr.Emit(trace.Span{Kind: trace.KindNode, Label: bc.Labels[ins.B],
						Start: nodeStart, Dur: end - nodeStart, N: int64(ins.A)})
				}
			}
			pc++

		case bytecode.OpCkpt:
			if in.ckptSpec != nil {
				if err := b.checkpoint(int(ins.A), 0); err != nil {
					return err
				}
			}
			pc++

		case bytecode.OpLoop, bytecode.OpLoopCkpt:
			first := 0
			if pc == resumeLoopPC {
				if ins.Op == bytecode.OpLoop {
					return fmt.Errorf("exec: checkpoint cursor (%d,%d) points into a non-resumable loop", startNode, startIter)
				}
				first = pendingFirst
				resumeLoopPC, pendingFirst = -1, 0
			}
			count, err := b.tripCount(ins)
			if err != nil {
				return err
			}
			if first >= count {
				pc = ins.D
				continue
			}
			b.vars[ins.A] = first
			ckptNode := int32(-1)
			if ins.Op == bytecode.OpLoopCkpt {
				ckptNode = ins.E
			}
			b.frames = append(b.frames, bcFrame{varSlot: ins.A, loopPC: pc, ckptNode: ckptNode, count: count, v: first})
			pc++

		case bytecode.OpEndLoop:
			f := &b.frames[len(b.frames)-1]
			f.v++
			if f.v < f.count {
				if f.ckptNode >= 0 && in.ckptSpec != nil && f.v%in.ckptSpec.every() == 0 {
					if err := b.checkpoint(int(f.ckptNode), f.v); err != nil {
						return err
					}
				}
				b.vars[f.varSlot] = f.v
				pc = f.loopPC + 1
			} else {
				b.frames = b.frames[:len(b.frames)-1]
				pc++
			}

		default:
			if err := b.exec(ins); err != nil {
				return err
			}
			pc++
		}
	}
	return nil
}

func (b *bcExec) tripCount(ins *bytecode.Instr) (int, error) {
	switch ins.B {
	case bytecode.CountSlabs:
		return b.slabs[ins.C].Count, nil
	case bytecode.CountCols:
		buf := b.bufs[ins.C]
		if buf == nil {
			return 0, fmt.Errorf("exec: cols of unread buffer %q", b.bc.BufNames[ins.C])
		}
		return buf.Cols, nil
	default:
		return int(ins.C), nil
	}
}

// exec handles the plan opcodes (everything but control flow).
func (b *bcExec) exec(ins *bytecode.Instr) error {
	switch ins.Op {
	case bytecode.OpLoadSlab:
		return b.loadSlab(ins)
	case bytecode.OpNewStaging:
		return b.newStaging(ins)
	case bytecode.OpAutoStage:
		b.autoOn[ins.A] = true
		b.autoIdx[ins.A] = -1
		return nil
	case bytecode.OpFlushStage:
		return b.flushStage(ins.A)
	case bytecode.OpStoreSlab:
		return b.storeSlab(ins)
	case bytecode.OpZeroVec:
		return b.zeroVec(ins)
	case bytecode.OpAxpy:
		return b.axpy(ins)
	case bytecode.OpSumStore:
		return b.sumStore(ins)
	case bytecode.OpResetCounter:
		b.in.counter = 0
		return nil
	case bytecode.OpNewSlab:
		return b.newSlab(ins)
	case bytecode.OpEwise:
		return b.ewise(ins)
	case bytecode.OpShiftEwise:
		return b.shiftEwise(ins)
	case bytecode.OpAllToAll:
		return b.allToAll(ins)
	default:
		return fmt.Errorf("exec: unexpected opcode %s", ins.Op)
	}
}

func (b *bcExec) loadSlab(ins *bytecode.Instr) error {
	arr := b.arrays[ins.A]
	idx := b.vars[ins.B]
	var icla *oocarray.ICLA
	var err error
	if ins.D == 0 {
		icla, err = arr.ReadSlab(b.slabs[ins.A], idx)
	} else {
		icla, err = b.streamRead(ins, arr, idx)
	}
	if err != nil {
		return err
	}
	old := b.bufs[ins.C]
	b.bufs[ins.C] = icla
	b.recycle(arr, old)
	return nil
}

// streamRead serves a stream-marked load through its prefetch reader,
// falling back to a direct read when the sequential-scan hypothesis does
// not hold at runtime (same policy as the tree walk's readSlab).
func (b *bcExec) streamRead(ins *bytecode.Instr, arr *oocarray.Array, idx int) (*oocarray.ICLA, error) {
	ri := ins.E
	r := b.readers[ri]
	if idx == 0 {
		if r == nil {
			r = arr.NewSlabReader(b.slabs[ins.A])
			b.readers[ri] = r
		} else {
			r.Reset()
		}
		b.readerNext[ri] = 0
	}
	if r == nil || b.readerNext[ri] != idx {
		return arr.ReadSlab(b.slabs[ins.A], idx)
	}
	icla, ok, err := r.Next()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("exec: stream reader for %q exhausted at slab %d", b.bc.Arrays[ins.A].Name, idx)
	}
	b.readerNext[ri] = idx + 1
	return icla, nil
}

func (b *bcExec) newStaging(ins *bytecode.Instr) error {
	arr := b.arrays[ins.A]
	like := b.bufs[ins.B]
	if like == nil {
		return fmt.Errorf("exec: NewStaging rows-like buffer %q not read yet", b.bc.BufNames[ins.B])
	}
	s := &oocarray.ICLA{
		RowOff: like.RowOff, ColOff: 0,
		Rows: like.Rows, Cols: arr.LocalCols(),
		Data: bufpool.GetF64(like.Rows * arr.LocalCols()),
	}
	clear(s.Data)
	oldStage := b.staging[ins.A]
	oldBuf := b.bufs[ins.C]
	b.staging[ins.A] = s
	b.bufs[ins.C] = s
	b.recycle(arr, oldStage)
	b.recycle(arr, oldBuf)
	return nil
}

func (b *bcExec) flushStage(arrIdx int32) error {
	s := b.staging[arrIdx]
	if s == nil {
		return nil
	}
	arr := b.arrays[arrIdx]
	if w := b.writers[arrIdx]; w != nil {
		if err := w.Write(s); err != nil {
			return err
		}
	} else if err := arr.WriteSection(s); err != nil {
		return err
	}
	b.staging[arrIdx] = nil
	b.recycle(arr, s)
	return nil
}

func (b *bcExec) storeSlab(ins *bytecode.Instr) error {
	buf := b.bufs[ins.B]
	if buf == nil {
		return fmt.Errorf("exec: WriteBuf of unknown buffer %q", b.bc.BufNames[ins.B])
	}
	if w := b.writers[ins.A]; w != nil {
		return w.Write(buf)
	}
	return b.arrays[ins.A].WriteSection(buf)
}

func (b *bcExec) zeroVec(ins *bytecode.Instr) error {
	var rows int
	if ins.B >= 0 {
		buf := b.bufs[ins.B]
		if buf == nil {
			return fmt.Errorf("exec: ZeroVec rows-like buffer %q not read yet", b.bc.BufNames[ins.B])
		}
		rows = buf.Rows
	} else {
		rows = b.arrays[ins.C].LocalRows()
	}
	v := b.vecs[ins.A]
	if len(v) != rows {
		b.vecs[ins.A] = make([]float64, rows)
	} else if !b.in.phantom {
		for i := range v {
			v[i] = 0
		}
	}
	return nil
}

func (b *bcExec) axpy(ins *bytecode.Instr) error {
	vec := b.vecs[ins.A]
	if vec == nil {
		return fmt.Errorf("exec: Axpy into unallocated vector %q", b.bc.VecNames[ins.A])
	}
	a := b.bufs[ins.B]
	if a == nil {
		return fmt.Errorf("exec: Axpy reads unread buffer %q", b.bc.BufNames[ins.B])
	}
	bb := b.bufs[ins.D]
	if bb == nil {
		return fmt.Errorf("exec: Axpy reads unread buffer %q", b.bc.BufNames[ins.D])
	}
	row := 0
	if ins.E >= 0 {
		scale := 1
		if ins.F >= 0 {
			scale = b.slabs[ins.F].Width
		}
		row = b.vars[ins.E] * scale
	}
	if ins.G >= 0 {
		row += b.vars[ins.G]
	}
	if a.Rows != len(vec) {
		return fmt.Errorf("exec: Axpy shape mismatch: vector %d vs slab rows %d", len(vec), a.Rows)
	}
	if !b.in.phantom {
		col := a.Col(b.vars[ins.C])
		bval := bb.At(row, b.vars[ins.H])
		for i, v := range col {
			vec[i] += bval * v
		}
	}
	b.in.proc.Compute(2 * int64(a.Rows))
	return nil
}

func (b *bcExec) sumStore(ins *bytecode.Instr) error {
	in := b.in
	vec := b.vecs[ins.A]
	if vec == nil {
		return fmt.Errorf("exec: SumStore of unallocated vector %q", b.bc.VecNames[ins.A])
	}
	arr := b.arrays[ins.B]
	gj := in.counter
	in.counter++
	owner := arr.Dist().Dims[1].Owner(gj)
	mine := owner == in.proc.Rank()

	// The owner positions its (auto) staging slab before the reduction.
	if mine && b.autoOn[ins.B] {
		_, local := arr.Dist().Dims[1].ToLocal(gj)
		slb := b.slabs[ins.B]
		idx := local / slb.Width
		if idx != b.autoIdx[ins.B] {
			if err := b.flushStage(ins.B); err != nil {
				return err
			}
			s, err := arr.NewSlab(slb, idx)
			if err != nil {
				return err
			}
			b.staging[ins.B] = s
			b.autoIdx[ins.B] = idx
		}
	}

	sum := in.proc.Reduce(owner, reduceTag, vec)
	if !mine {
		return nil
	}
	name := b.bc.Arrays[ins.B].Name
	s := b.staging[ins.B]
	if s == nil {
		return fmt.Errorf("exec: SumStore into %q with no staging buffer", name)
	}
	_, local := arr.Dist().Dims[1].ToLocal(gj)
	lj := local - s.ColOff
	if lj < 0 || lj >= s.Cols {
		return fmt.Errorf("exec: SumStore column %d outside staging [%d,+%d)", gj, s.ColOff, s.Cols)
	}
	if len(sum) != s.Rows {
		return fmt.Errorf("exec: SumStore length %d vs staging rows %d", len(sum), s.Rows)
	}
	copy(s.Col(lj), sum)
	mp.ReleaseBuf(sum)
	return nil
}

func (b *bcExec) newSlab(ins *bytecode.Instr) error {
	arr := b.arrays[ins.A]
	icla, err := arr.NewSlab(b.slabs[ins.A], b.vars[ins.B])
	if err != nil {
		return err
	}
	old := b.bufs[ins.C]
	b.bufs[ins.C] = icla
	b.recycle(arr, old)
	return nil
}

func (b *bcExec) ewise(ins *bytecode.Instr) error {
	out := b.bufs[ins.A]
	if out == nil {
		return fmt.Errorf("exec: Ewise into unknown buffer %q", b.bc.BufNames[ins.A])
	}
	if !b.in.phantom {
		if err := b.evalEwiseCode(b.bc.Exprs[ins.B], out.Data); err != nil {
			return err
		}
	}
	b.in.proc.Compute(int64(ins.C) * int64(len(out.Data)))
	return nil
}

// evalEwiseCode evaluates a postfix program elementwise into dst. The
// first value pushed lands in dst itself (the postfix image of the tree
// evaluation's left spine, which works into dst); every later push uses a
// pooled buffer, and operators fold the right operand into the left in
// place. The float operations therefore happen in exactly the order the
// recursive evaluation performs them, and the result is dst with no
// final copy.
func (b *bcExec) evalEwiseCode(code []bytecode.ExprInstr, dst []float64) error {
	stack := b.estack[:0]
	fail := func(err error) error {
		// dst sits at the bottom of the stack; only pooled buffers above
		// it go back.
		for i := 1; i < len(stack); i++ {
			bufpool.PutF64(stack[i])
		}
		return err
	}
	push := func() []float64 {
		t := dst
		if len(stack) > 0 {
			t = bufpool.GetF64(len(dst))
		}
		stack = append(stack, t)
		return t
	}
	for i := range code {
		ins := &code[i]
		switch ins.Op {
		case bytecode.EPushConst:
			t := push()
			for j := range t {
				t[j] = ins.Val
			}
		case bytecode.EPushBuf:
			src := b.bufs[ins.A]
			if src == nil {
				return fail(fmt.Errorf("exec: Ewise reads unread buffer %q", b.bc.BufNames[ins.A]))
			}
			if len(src.Data) != len(dst) {
				return fail(fmt.Errorf("exec: Ewise buffer %q has %d elements, output has %d",
					b.bc.BufNames[ins.A], len(src.Data), len(dst)))
			}
			copy(push(), src.Data)
		default: // EAdd..EDiv; Validate pinned the opcode set and stack depth
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			l := stack[len(stack)-1]
			switch ins.Op {
			case bytecode.EAdd:
				for j := range l {
					l[j] += r[j]
				}
			case bytecode.ESub:
				for j := range l {
					l[j] -= r[j]
				}
			case bytecode.EMul:
				for j := range l {
					l[j] *= r[j]
				}
			case bytecode.EDiv:
				for j := range l {
					l[j] /= r[j]
				}
			}
			bufpool.PutF64(r)
		}
	}
	b.estack = stack[:0]
	return nil
}

func (b *bcExec) shiftEwise(ins *bytecode.Instr) error {
	code := b.bc.Exprs[ins.B]
	return b.in.runShiftCore(b.bc.Arrays[ins.A].Name, b.shiftInputs[ins.B],
		int(ins.C), int(ins.D), int(ins.E), int(ins.F), int(ins.G),
		func(c, rows, localCols, h0 int, halos map[string]*oocarray.ICLA, ghosts map[string][2][]float64) ([]float64, error) {
			return b.evalShiftCode(code, c, rows, localCols, h0, halos, ghosts)
		})
}

// evalShiftCode evaluates a postfix program for one output column of a
// shifted FORALL. Every leaf pushes a pooled column (resolved through the
// halo section or the exchanged ghosts), operators fold right into left
// in place — the same buffer traffic and float order as the recursive
// evalShiftColumn, including phantom mode's allocate-but-don't-fill
// behavior.
func (b *bcExec) evalShiftCode(code []bytecode.ExprInstr, c, rows, localCols, h0 int,
	halos map[string]*oocarray.ICLA, ghosts map[string][2][]float64) ([]float64, error) {
	stack := b.estack[:0]
	phantom := b.in.phantom
	fail := func(err error) ([]float64, error) {
		for _, t := range stack {
			bufpool.PutF64(t)
		}
		return nil, err
	}
	for i := range code {
		ins := &code[i]
		switch ins.Op {
		case bytecode.EPushConst:
			col := bufpool.GetF64(rows)
			if !phantom {
				for j := range col {
					col[j] = ins.Val
				}
			}
			stack = append(stack, col)
		case bytecode.EPushShift:
			col := bufpool.GetF64(rows)
			stack = append(stack, col)
			if phantom {
				continue
			}
			name := b.bc.Arrays[ins.A].Name
			src := c + int(ins.B)
			switch {
			case src < 0: // left ghost
				g := ghosts[name][0]
				off := (len(g)/rows + src) * rows
				if off < 0 || off+rows > len(g) {
					return fail(fmt.Errorf("exec: shift column %d of %q outside the left ghost", src, name))
				}
				copy(col, g[off:off+rows])
			case src >= localCols: // right ghost
				g := ghosts[name][1]
				off := (src - localCols) * rows
				if off < 0 || off+rows > len(g) {
					return fail(fmt.Errorf("exec: shift column %d of %q outside the right ghost", src, name))
				}
				copy(col, g[off:off+rows])
			default: // local, through the halo section
				copy(col, halos[name].Col(src-h0))
			}
		default: // EAdd..EDiv
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			l := stack[len(stack)-1]
			if !phantom {
				switch ins.Op {
				case bytecode.EAdd:
					for j := range l {
						l[j] += r[j]
					}
				case bytecode.ESub:
					for j := range l {
						l[j] -= r[j]
					}
				case bytecode.EMul:
					for j := range l {
						l[j] *= r[j]
					}
				case bytecode.EDiv:
					for j := range l {
						l[j] /= r[j]
					}
				}
			}
			bufpool.PutF64(r)
		}
	}
	col := stack[0]
	b.estack = stack[:0]
	return col, nil
}

func (b *bcExec) allToAll(ins *bytecode.Instr) error {
	src := b.arrays[ins.A]
	dst := b.arrays[ins.B]
	var transform func(gi, gj int) (int, int)
	if ins.C == 1 {
		transform = func(gi, gj int) (int, int) { return gj, gi }
	}
	return oocarray.RedistributeVia(b.in.proc, src, dst, int(ins.E), redistTag, transform, collio.Method(ins.D))
}

// checkpoint syncs the interpreter's name-keyed maps from the slot tables
// and commits through the shared doCheckpoint, so a bytecode run's
// manifests are byte-identical to the tree walk's (same keys, same JSON).
// The maps are rebuilt fresh each time — the slot tables are the truth
// between checkpoints.
func (b *bcExec) checkpoint(nodeIdx, iter int) error {
	in := b.in
	in.staging = make(map[string]*oocarray.ICLA, len(b.staging))
	in.auto = make(map[string]bool, len(b.autoOn))
	in.autoIdx = make(map[string]int, len(b.autoOn))
	for i, spec := range b.bc.Arrays {
		if s := b.staging[i]; s != nil {
			in.staging[spec.Name] = s
		}
		if b.autoOn[i] {
			in.auto[spec.Name] = true
			in.autoIdx[spec.Name] = b.autoIdx[i]
		}
	}
	return in.doCheckpoint(nodeIdx, iter)
}

// recycle returns a slab buffer to the arena once no slot references it
// (the slice-table mirror of interp.recycle).
func (b *bcExec) recycle(arr *oocarray.Array, s *oocarray.ICLA) {
	if s == nil {
		return
	}
	for _, x := range b.bufs {
		if x == s {
			return
		}
	}
	for _, x := range b.staging {
		if x == s {
			return
		}
	}
	arr.Recycle(s)
}
