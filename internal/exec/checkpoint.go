package exec

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	iofs "io/fs"
	"math"

	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/matrix"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/plan"
	"github.com/ooc-hpf/passion/internal/trace"
)

// CheckpointSpec enables checkpoint/restart for an execution: at eligible
// boundaries each processor snapshots the local files of every mutated
// array plus the interpreter's cross-boundary state (staging buffers and
// the global column counter) and an iteration cursor, committing them to
// a per-processor manifest. A failed or killed run restarts from the last
// globally consistent checkpoint with exec.Resume.
//
// Eligible boundaries are (1) between top-level statements of the program
// and (2) between iterations of top-level loops containing SumStore; the
// latter restriction keeps the checkpoint's internal barrier collective-
// safe, because SumStore's reductions already force globally uniform trip
// counts there, while purely local loops may run different counts per
// processor.
type CheckpointSpec struct {
	// Every checkpoints each Every-th eligible loop iteration; values
	// below 1 behave as 1. Statement boundaries always checkpoint.
	Every int
	// Prefix names the checkpoint files; empty means "ckpt". Manifests
	// are written to <prefix>.p<rank>.s<slot>.manifest and array
	// snapshots to <prefix>.s<slot>.<array>.p<rank>.laf, with two slots
	// alternating per epoch so a crash mid-checkpoint never destroys the
	// previous consistent one.
	Prefix string
}

func (c *CheckpointSpec) prefix() string {
	if c.Prefix == "" {
		return "ckpt"
	}
	return c.Prefix
}

func (c *CheckpointSpec) every() int {
	if c.Every < 1 {
		return 1
	}
	return c.Every
}

// ErrNoCheckpoint reports that Resume found no complete checkpoint epoch
// on any slot; the run must be restarted from scratch.
var ErrNoCheckpoint = errors.New("exec: no consistent checkpoint found")

// ckptTag is the collective tag of the checkpoint commit barrier.
const ckptTag = 13

// ckptSlots is the number of alternating on-disk checkpoint generations.
const ckptSlots = 2

// ckptMagic frames manifest files.
const ckptMagic = "OOCKPT1\n"

func (c *CheckpointSpec) manifestName(rank, slot int) string {
	return fmt.Sprintf("%s.p%d.s%d.manifest", c.prefix(), rank, slot)
}

func (c *CheckpointSpec) snapshotName(array string, rank, slot int) string {
	return fmt.Sprintf("%s.s%d.%s.p%d.laf", c.prefix(), slot, array, rank)
}

// ckptICLA serializes one staging buffer. Data is base64 of the raw
// little-endian float64 bytes, so the round trip is bitwise exact even
// for values JSON cannot represent.
type ckptICLA struct {
	RowOff int    `json:"row_off"`
	ColOff int    `json:"col_off"`
	Rows   int    `json:"rows"`
	Cols   int    `json:"cols"`
	Data   string `json:"data"`
}

// ckptStats is one processor's statistics state at the instant the
// checkpoint was taken (pre-commit-barrier). Restoring it — plus
// replaying the commit barrier — puts a resumed rank's simulated clock
// and counters exactly where the uninterrupted run's were, so the final
// statistics of a resumed run are bitwise identical. Every float64
// round-trips exactly through JSON (encoding/json emits the shortest
// representation that parses back to the same bits).
type ckptStats struct {
	Clock          float64                   `json:"clock"`
	Comm           trace.CommStats           `json:"comm"`
	Flops          int64                     `json:"flops"`
	ComputeSeconds float64                   `json:"compute_seconds"`
	PerArray       map[string]*trace.IOStats `json:"per_array,omitempty"`
}

// ckptManifest is one processor's committed checkpoint record.
type ckptManifest struct {
	Epoch   int                  `json:"epoch"`
	NodeIdx int                  `json:"node_idx"`
	Iter    int                  `json:"iter"`
	Counter int                  `json:"counter"`
	Auto    map[string]bool      `json:"auto,omitempty"`
	AutoIdx map[string]int       `json:"auto_idx,omitempty"`
	Staging map[string]*ckptICLA `json:"staging,omitempty"`
	// Arrays lists the mutated arrays whose snapshots accompany this
	// manifest.
	Arrays []string `json:"arrays"`
	// Run snapshots the rank's clock and statistics at checkpoint time;
	// Options.RestoreStats consumes it on resume.
	Run *ckptStats `json:"run,omitempty"`
}

// floatsToB64 encodes float64s as base64 over little-endian bytes.
func floatsToB64(v []float64) string {
	buf := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// b64ToFloats inverts floatsToB64.
func b64ToFloats(s string) ([]float64, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, err
	}
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("exec: staging payload of %d bytes is not a float64 sequence", len(buf))
	}
	v := make([]float64, len(buf)/8)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return v, nil
}

// writeManifest frames and stores one manifest: magic, payload length,
// payload CRC32, JSON payload. The framing makes torn or corrupted
// manifests detectable, so Resume simply ignores them and falls back to
// the other slot.
func writeManifest(fs iosim.FS, name string, m *ckptManifest) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("exec: encode checkpoint manifest: %w", err)
	}
	frame := make([]byte, len(ckptMagic)+8+len(payload))
	copy(frame, ckptMagic)
	binary.BigEndian.PutUint32(frame[len(ckptMagic):], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[len(ckptMagic)+4:], crc32.ChecksumIEEE(payload))
	copy(frame[len(ckptMagic)+8:], payload)
	f, err := fs.Create(name)
	if err != nil {
		return fmt.Errorf("exec: create checkpoint manifest %s: %w", name, err)
	}
	defer f.Close()
	if n, err := f.WriteAt(frame, 0); err != nil || n != len(frame) {
		return fmt.Errorf("exec: write checkpoint manifest %s: %d of %d bytes: %v", name, n, len(frame), err)
	}
	return nil
}

// readManifest loads and validates one manifest; any framing or checksum
// violation returns an error (the caller treats the slot as absent).
func readManifest(fs iosim.FS, name string) (*ckptManifest, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	head := make([]byte, len(ckptMagic)+8)
	if n, err := f.ReadAt(head, 0); n != len(head) {
		return nil, fmt.Errorf("exec: manifest %s header: %d of %d bytes: %v", name, n, len(head), err)
	}
	if string(head[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("exec: manifest %s: bad magic", name)
	}
	plen := binary.BigEndian.Uint32(head[len(ckptMagic):])
	want := binary.BigEndian.Uint32(head[len(ckptMagic)+4:])
	payload := make([]byte, plen)
	if n, err := f.ReadAt(payload, int64(len(head))); n != len(payload) {
		return nil, fmt.Errorf("exec: manifest %s payload: %d of %d bytes: %v", name, n, len(payload), err)
	}
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("exec: manifest %s: payload checksum mismatch", name)
	}
	var m ckptManifest
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("exec: manifest %s: %w", name, err)
	}
	return &m, nil
}

// mutatedArrays returns the names of arrays the program writes, walking
// the body rather than trusting ArraySpec.Role (elementwise programs mark
// read-and-written arrays as inputs).
func mutatedArrays(body []plan.Node) []string {
	seen := make(map[string]bool)
	var order []string
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			order = append(order, name)
		}
	}
	var walk func(nodes []plan.Node)
	walk = func(nodes []plan.Node) {
		for _, n := range nodes {
			switch n := n.(type) {
			case *plan.Loop:
				walk(n.Body)
			case *plan.WriteBuf:
				add(n.Array)
			case *plan.SumStore:
				add(n.Array)
			case *plan.FlushStage:
				add(n.Array)
			case *plan.ShiftEwise:
				add(n.Out)
			}
		}
	}
	walk(body)
	return order
}

// doCheckpoint commits one checkpoint with cursor (nodeIdx, iter): array
// snapshots and the manifest go to the slot epoch%2, then a barrier
// makes the epoch globally committed before anyone can start the next
// one (so the slots of any two processors never diverge by more than one
// epoch, and the minimum of the per-processor maxima is always a
// complete, consistent generation). Checkpoint I/O is unaccounted except
// for the commit barrier's synchronization.
func (in *interp) doCheckpoint(nodeIdx, iter int) error {
	ckptStart := in.proc.Clock().Seconds()
	spec := in.ckptSpec
	slot := in.ckptEpoch % ckptSlots
	rank := in.proc.Rank()
	arrays := mutatedArrays(in.prog.Body)
	for _, name := range arrays {
		arr, err := in.array(name)
		if err != nil {
			return err
		}
		m, err := arr.ReadLocal()
		if err != nil {
			return fmt.Errorf("exec: checkpoint snapshot of %q: %w", name, err)
		}
		disk := iosim.NewResilientDisk(in.fs, in.proc.Config(), nil, in.res)
		laf, err := disk.CreateLAF(spec.snapshotName(name, rank, slot), int64(len(m.Data)))
		if err != nil {
			return fmt.Errorf("exec: checkpoint snapshot of %q: %w", name, err)
		}
		_, werr := laf.WriteAll(m.Data)
		cerr := laf.Close()
		if werr != nil {
			return fmt.Errorf("exec: checkpoint snapshot of %q: %w", name, werr)
		}
		if cerr != nil {
			return fmt.Errorf("exec: checkpoint snapshot of %q: %w", name, cerr)
		}
	}
	man := &ckptManifest{
		Epoch:   in.ckptEpoch,
		NodeIdx: nodeIdx,
		Iter:    iter,
		Counter: in.counter,
		Arrays:  arrays,
		Run:     in.snapshotStats(ckptStart),
	}
	if len(in.auto) > 0 {
		man.Auto = make(map[string]bool, len(in.auto))
		for k, v := range in.auto {
			man.Auto[k] = v
		}
	}
	if len(in.autoIdx) > 0 {
		man.AutoIdx = make(map[string]int, len(in.autoIdx))
		for k, v := range in.autoIdx {
			man.AutoIdx[k] = v
		}
	}
	for name, s := range in.staging {
		if s == nil {
			continue
		}
		if man.Staging == nil {
			man.Staging = make(map[string]*ckptICLA)
		}
		man.Staging[name] = &ckptICLA{
			RowOff: s.RowOff, ColOff: s.ColOff,
			Rows: s.Rows, Cols: s.Cols,
			Data: floatsToB64(s.Data),
		}
	}
	if err := writeManifest(in.fs, spec.manifestName(rank, slot), man); err != nil {
		return err
	}
	// Commit: every processor has durably written epoch E before any
	// processor may overwrite the slot holding epoch E-1.
	in.proc.Barrier(ckptTag)
	if tr := in.proc.Tracer(); tr != nil {
		// Checkpoint I/O itself is unaccounted; the span brackets the
		// commit (including its barrier wait) as an overlay marker.
		tr.Emit(trace.Span{Kind: trace.KindCheckpoint, Start: ckptStart,
			Dur: in.proc.Clock().Seconds() - ckptStart, N: int64(in.ckptEpoch)})
	}
	if in.ckptHook != nil && rank == 0 {
		// The epoch is globally committed; let the harness observe (or
		// crash at) this boundary.
		in.ckptHook(in.ckptEpoch)
	}
	in.ckptEpoch++
	return nil
}

// snapshotStats captures the rank's pre-barrier statistics for the
// manifest. The per-array entries are value copies, so later mutation of
// the live counters cannot leak into the committed record.
func (in *interp) snapshotStats(clock float64) *ckptStats {
	st := in.proc.Stats()
	s := &ckptStats{
		Clock:          clock,
		Comm:           st.Comm,
		Flops:          st.Flops,
		ComputeSeconds: st.ComputeSeconds,
	}
	if len(in.perArray) > 0 {
		s.PerArray = make(map[string]*trace.IOStats, len(in.perArray))
		for name, io := range in.perArray {
			cp := *io
			s.PerArray[name] = &cp
		}
	}
	return s
}

// restoreFromManifest rebuilds the interpreter's cross-boundary state and
// the mutated arrays' local files from a committed checkpoint. It runs
// after the arrays have been opened (not created) by newInterp.
func (in *interp) restoreFromManifest(m *ckptManifest) error {
	spec := in.ckptSpec
	slot := m.Epoch % ckptSlots
	rank := in.proc.Rank()
	for _, name := range m.Arrays {
		arr, err := in.array(name)
		if err != nil {
			return err
		}
		disk := iosim.NewResilientDisk(in.fs, in.proc.Config(), nil, in.res)
		laf, err := disk.OpenLAF(spec.snapshotName(name, rank, slot), int64(arr.LocalElems()))
		if err != nil {
			return fmt.Errorf("exec: restore snapshot of %q: %w", name, err)
		}
		data, _, rerr := laf.ReadAll()
		cerr := laf.Close()
		if rerr != nil {
			return fmt.Errorf("exec: restore snapshot of %q: %w", name, rerr)
		}
		if cerr != nil {
			return fmt.Errorf("exec: restore snapshot of %q: %w", name, cerr)
		}
		mat := matrix.New(arr.LocalRows(), arr.LocalCols())
		copy(mat.Data, data)
		if err := arr.WriteLocal(mat); err != nil {
			return fmt.Errorf("exec: restore snapshot of %q: %w", name, err)
		}
	}
	in.counter = m.Counter
	for k, v := range m.Auto {
		in.auto[k] = v
	}
	for k, v := range m.AutoIdx {
		in.autoIdx[k] = v
	}
	for name, c := range m.Staging {
		data, err := b64ToFloats(c.Data)
		if err != nil {
			return fmt.Errorf("exec: restore staging of %q: %w", name, err)
		}
		if len(data) != c.Rows*c.Cols {
			return fmt.Errorf("exec: restore staging of %q: %d elements for %dx%d", name, len(data), c.Rows, c.Cols)
		}
		in.staging[name] = &oocarray.ICLA{RowOff: c.RowOff, ColOff: c.ColOff, Rows: c.Rows, Cols: c.Cols, Data: data}
	}
	in.ckptEpoch = m.Epoch + 1
	if in.restoreStats && m.Run != nil {
		// Put the clock and counters exactly where the original run's
		// were when this epoch's snapshot was taken (pre-commit-barrier);
		// run() replays the barrier afterwards. The per-array sinks are
		// already registered with the disks, so they must be overwritten
		// in place, never replaced.
		st := in.proc.Stats()
		st.Comm = m.Run.Comm
		st.Flops = m.Run.Flops
		st.ComputeSeconds = m.Run.ComputeSeconds
		for name, io := range m.Run.PerArray {
			if dst := in.perArray[name]; dst != nil {
				*dst = *io
			} else {
				cp := *io
				in.perArray[name] = &cp
			}
		}
		in.proc.Clock().SyncTo(m.Run.Clock)
		in.statsRestored = true
	}
	return nil
}

// loadResumeManifests reads every rank's manifests from both slots and
// selects the newest globally complete epoch: the minimum over ranks of
// each rank's maximum valid epoch. The commit barrier guarantees that
// epoch exists on every rank. Unreadable or corrupted manifests are
// treated as absent.
func loadResumeManifests(fs iosim.FS, spec *CheckpointSpec, procs int) ([]*ckptManifest, error) {
	byRank := make([]map[int]*ckptManifest, procs)
	epoch := -1
	for rank := 0; rank < procs; rank++ {
		byRank[rank] = make(map[int]*ckptManifest, ckptSlots)
		best := -1
		for slot := 0; slot < ckptSlots; slot++ {
			m, err := readManifest(fs, spec.manifestName(rank, slot))
			if err != nil {
				continue
			}
			byRank[rank][m.Epoch] = m
			if m.Epoch > best {
				best = m.Epoch
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("%w (rank %d has none)", ErrNoCheckpoint, rank)
		}
		if epoch < 0 || best < epoch {
			epoch = best
		}
	}
	out := make([]*ckptManifest, procs)
	for rank := 0; rank < procs; rank++ {
		m, ok := byRank[rank][epoch]
		if !ok {
			return nil, fmt.Errorf("%w (rank %d lacks epoch %d)", ErrNoCheckpoint, rank, epoch)
		}
		out[rank] = m
	}
	return out, nil
}

// removeCheckpointFiles deletes every checkpoint artifact of the program
// (manifests and snapshots, both slots). Missing files are expected — the
// run may have checkpointed fewer epochs than there are slots — but any
// other removal failure is returned, joined, so failed GC of stale
// snapshots is visible to the caller instead of silently leaking files.
func removeCheckpointFiles(fs iosim.FS, p *plan.Program, spec *CheckpointSpec) error {
	if spec == nil {
		return nil
	}
	remove := func(name string) error {
		err := fs.Remove(name)
		if err == nil || errors.Is(err, iofs.ErrNotExist) {
			return nil
		}
		return err
	}
	var errs []error
	arrays := mutatedArrays(p.Body)
	for rank := 0; rank < p.Procs; rank++ {
		for slot := 0; slot < ckptSlots; slot++ {
			errs = append(errs, remove(spec.manifestName(rank, slot)))
			for _, name := range arrays {
				errs = append(errs, remove(spec.snapshotName(name, rank, slot)))
			}
		}
	}
	return errors.Join(errs...)
}
