package exec

import (
	"fmt"
	"strings"
	"testing"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/sim"
)

// shiftSource averages each column with its neighbors — a column stencil
// whose shifted references cross the BLOCK boundaries.
const shiftSource = `parameter (n=32, nprocs=4)
real x(n,n), z(n,n)
!hpf$ processors pr(nprocs)
!hpf$ template d(n)
!hpf$ distribute d(block) on pr
!hpf$ align (*,:) with d :: x, z
FORALL (k=2:n-1)
  z(1:n,k) = (x(1:n,k-1) + 2*x(1:n,k) + x(1:n,k+1)) / 4
end FORALL
end
`

func shiftFillX(i, j int) float64 { return float64(4 * (i%6 + 3*(j%5))) } // multiples of 4: /4 exact

func runShift(t *testing.T, src string, n, procs, mem int) (*compiler.Result, *Result) {
	t.Helper()
	res, err := compiler.CompileSource(src, compiler.Options{N: n, Procs: procs, MemElems: mem})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(res.Program, sim.Delta(procs), Options{
		Fill: map[string]func(int, int) float64{"x": shiftFillX},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, out
}

func TestShiftPatternRecognized(t *testing.T) {
	res, _ := runShift(t, shiftSource, 32, 4, 32*8)
	an := res.Analysis
	if an.Pattern != compiler.PatternShift {
		t.Fatalf("pattern = %v", an.Pattern)
	}
	st := an.Shift.Stmts[0]
	if st.MinShift != -1 || st.MaxShift != 1 || st.Lo != 1 || st.Hi != 30 {
		t.Errorf("shift analysis wrong: %+v", st)
	}
	if !strings.Contains(an.Comm, "boundary-column exchange") {
		t.Errorf("communication analysis: %q", an.Comm)
	}
	if !strings.Contains(res.Program.String(), "shift_exchange(ghosts: left=1, right=1)") {
		t.Errorf("program text:\n%s", res.Program.String())
	}
}

func TestShiftExecutionCorrect(t *testing.T) {
	for _, tc := range []struct{ n, p, mem int }{
		{32, 1, 32 * 8},
		{32, 2, 32 * 8},
		{32, 4, 32 * 4},
		{48, 4, 48 * 2}, // one-column slabs
		{32, 8, 32 * 8}, // blocks of 4 columns, ghosts at every boundary
	} {
		t.Run(fmt.Sprintf("n=%d/p=%d", tc.n, tc.p), func(t *testing.T) {
			_, out := runShift(t, shiftSource, tc.n, tc.p, tc.mem)
			z, err := out.ReadArray("z")
			if err != nil {
				t.Fatal(err)
			}
			n := tc.n
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					var want float64
					if j >= 1 && j <= n-2 { // FORALL k=2..n-1 (1-based)
						want = (shiftFillX(i, j-1) + 2*shiftFillX(i, j) + shiftFillX(i, j+1)) / 4
					}
					if z.At(i, j) != want {
						t.Fatalf("z(%d,%d) = %g, want %g", i, j, z.At(i, j), want)
					}
				}
			}
		})
	}
}

func TestShiftCommunicationCounted(t *testing.T) {
	// With 4 processors there are 3 internal boundaries; each input
	// column crossing costs one message per direction per boundary.
	_, out := runShift(t, shiftSource, 32, 4, 32*8)
	comm := out.Stats.TotalComm()
	if comm.MessagesSent != 6 { // 3 boundaries x 2 directions, one input array
		t.Errorf("messages = %d, want 6", comm.MessagesSent)
	}
	if comm.BytesSent != 6*32*4 { // 32-element columns, 4 model bytes each
		t.Errorf("bytes = %d, want %d", comm.BytesSent, 6*32*4)
	}
}

func TestShiftBoundsPreserveOldContents(t *testing.T) {
	// Columns outside the FORALL bounds keep their previous (zero)
	// contents — checked above — and a narrower FORALL leaves more
	// untouched.
	src := strings.Replace(shiftSource, "FORALL (k=2:n-1)", "FORALL (k=8:9)", 1)
	_, out := runShift(t, src, 32, 4, 32*8)
	z, err := out.ReadArray("z")
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 32; j++ {
		touched := j == 7 || j == 8 // 0-based columns for k=8..9
		if touched == (z.At(0, j) == 0 && z.At(5, j) == 0) {
			// touched columns must be nonzero somewhere; untouched all zero
			if touched {
				t.Fatalf("column %d should have been written", j)
			}
			t.Fatalf("column %d should be untouched", j)
		}
	}
}

func TestShiftRejections(t *testing.T) {
	cases := []struct{ name, src string }{
		{"output aliases input", strings.Replace(shiftSource, "z(1:n,k) = (x(1:n,k-1)", "x(1:n,k) = (x(1:n,k-1)", 1)},
		{"shift outside range", strings.Replace(shiftSource, "FORALL (k=2:n-1)", "FORALL (k=1:n)", 1)},
		{"row-block mapping", strings.Replace(shiftSource, "align (*,:)", "align (:,*)", 1)},
	}
	for _, tc := range cases {
		if _, err := compiler.CompileSource(tc.src, compiler.Options{MemElems: 1 << 10}); err == nil {
			t.Errorf("%s: expected compile error", tc.name)
		}
	}
	// Shift wider than a block: blocks of 32/8=4 columns, shift 5.
	wide := strings.Replace(shiftSource, "x(1:n,k-1)", "x(1:n,k-5)", 1)
	wide = strings.Replace(wide, "FORALL (k=2:n-1)", "FORALL (k=6:n-1)", 1)
	if _, err := compiler.CompileSource(wide, compiler.Options{N: 32, Procs: 8, MemElems: 1 << 10}); err == nil {
		t.Error("block-crossing shift should be rejected")
	}
}

func TestShiftPhantomMatchesReal(t *testing.T) {
	res, err := compiler.CompileSource(shiftSource, compiler.Options{N: 32, Procs: 4, MemElems: 32 * 4})
	if err != nil {
		t.Fatal(err)
	}
	real, err := Run(res.Program, sim.Delta(4), Options{
		Fill: map[string]func(int, int) float64{"x": shiftFillX},
	})
	if err != nil {
		t.Fatal(err)
	}
	ph, err := Run(res.Program, sim.Delta(4), Options{Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	if r, p := real.Stats.TotalIO(), ph.Stats.TotalIO(); !ioStatsEqual(r, p) {
		t.Errorf("phantom IO differs: %+v vs %+v", p, r)
	}
	rt, pt := real.Stats.ElapsedSeconds(), ph.Stats.ElapsedSeconds()
	if d := rt - pt; d > 1e-9 || d < -1e-9 {
		t.Errorf("phantom elapsed %.6f vs real %.6f", pt, rt)
	}
}
