package exec

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ooc-hpf/passion/internal/bufpool"
	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/gaxpy"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/sim"
)

// cancelAfter is a deterministic context: it reports Canceled after its
// Err has been consulted n times across all ranks, landing the
// cancellation mid-run at a reproducible op boundary without any timers.
type cancelAfter struct {
	context.Context
	left atomic.Int64
}

func newCancelAfter(n int64) *cancelAfter {
	c := &cancelAfter{Context: context.Background()}
	c.left.Store(n)
	return c
}

func (c *cancelAfter) Err() error {
	if c.left.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func compileGaxpy(t *testing.T, n, procs, mem int) *compiler.Result {
	t.Helper()
	res, err := compiler.CompileSource(hpf.GaxpySource, compiler.Options{
		N: n, Procs: procs, MemElems: mem, Policy: compiler.PolicyWeighted,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCancelStopsAndReleasesBuffers proves the two cancellation
// contracts: a cancelled run surfaces context.Canceled (wrapped through
// the per-rank error join), and every arena buffer — named slabs,
// staging, prefetched reader slabs, stranded mailbox payloads — is back
// in the pool afterwards. Checked mode counts every Get against a Put
// and panics on double release, so the balance below is exact.
func TestCancelStopsAndReleasesBuffers(t *testing.T) {
	res := compileGaxpy(t, 64, 4, 1<<12)
	fills := map[string]func(int, int) float64{
		res.Analysis.A: gaxpy.FillA, res.Analysis.B: gaxpy.FillB,
	}
	// Sweep the cancellation point from "before the first node" to deep
	// into the slab loops, with prefetch and write-behind on so the
	// overlapped-I/O buffers are in flight when the run stops.
	for _, after := range []int64{0, 1, 7, 40, 200, 1000} {
		bufpool.SetChecked(true)
		bufpool.ResetStats()
		_, err := RunCtx(newCancelAfter(after), res.Program, sim.Delta(4), Options{
			Fill:    fills,
			Runtime: oocarray.Options{Prefetch: true, WriteBehind: true},
		})
		if err == nil {
			t.Fatalf("after=%d: cancelled run completed", after)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("after=%d: error does not wrap context.Canceled: %v", after, err)
		}
		s := bufpool.Snapshot()
		bufpool.SetChecked(false)
		if s.Gets != s.Puts+s.Drops {
			t.Fatalf("after=%d: arena leak on cancel: %+v", after, s)
		}
	}
}

// TestCompletedRunReleasesBuffers pins the same balance on the success
// path: releaseBufs returns the interpreter's final slab bindings, so a
// full run leaves the arena balanced too.
func TestCompletedRunReleasesBuffers(t *testing.T) {
	res := compileGaxpy(t, 48, 4, 1<<12)
	bufpool.SetChecked(true)
	defer bufpool.SetChecked(false)
	bufpool.ResetStats()
	out, err := RunCtx(context.Background(), res.Program, sim.Delta(4), Options{
		Fill: map[string]func(int, int) float64{
			res.Analysis.A: gaxpy.FillA, res.Analysis.B: gaxpy.FillB,
		},
		Runtime: oocarray.Options{Prefetch: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if s := bufpool.Snapshot(); s.Gets != s.Puts+s.Drops {
		t.Fatalf("arena leak on completed run: %+v", s)
	}
}

// TestDeadlineExpiredBeforeStart: an already-expired deadline stops every
// rank at its first op boundary and reports DeadlineExceeded.
func TestDeadlineExpiredBeforeStart(t *testing.T) {
	res := compileGaxpy(t, 32, 2, 1<<10)
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	_, err := RunCtx(ctx, res.Program, sim.Delta(2), Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

// TestCancelledResilientRunDoesNotRecover: cancellation must end the
// recovery loop, not trigger a parity rebuild + respawn of the
// "failed" attempt.
func TestCancelledResilientRunDoesNotRecover(t *testing.T) {
	res := compileGaxpy(t, 48, 4, 1<<12)
	opts := Options{
		Parity:     true,
		Checkpoint: &CheckpointSpec{Every: 1},
	}
	rr, err := RunResilientCtx(newCancelAfter(100), res.Program, sim.Delta(4), opts, 2)
	if err == nil {
		rr.Close()
		t.Fatal("cancelled resilient run completed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
}
