package exec

// End-to-end property test: random mini-HPF elementwise programs are
// generated, compiled and executed out of core, and their results are
// compared against a direct in-core evaluation of the same statements.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/matrix"
	"github.com/ooc-hpf/passion/internal/sim"
)

// genProgram builds a random elementwise program over the given arrays
// and, in parallel, a reference evaluator per statement.
type genStmt struct {
	out  string
	expr string
	eval func(vals map[string]float64) float64
}

func genExpr(rng *rand.Rand, arrays []string, depth int) (string, func(map[string]float64) float64) {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0: // constant
			c := rng.Intn(9) + 1
			return fmt.Sprintf("%d", c), func(map[string]float64) float64 { return float64(c) }
		default: // array section
			a := arrays[rng.Intn(len(arrays))]
			return a + "(1:n,k)", func(vals map[string]float64) float64 { return vals[a] }
		}
	}
	// Division is excluded: a random denominator may be zero.
	ops := []byte{'+', '-', '*'}
	op := ops[rng.Intn(len(ops))]
	ls, lf := genExpr(rng, arrays, depth-1)
	rs, rf := genExpr(rng, arrays, depth-1)
	eval := func(vals map[string]float64) float64 {
		l, r := lf(vals), rf(vals)
		switch op {
		case '+':
			return l + r
		case '-':
			return l - r
		default:
			return l * r
		}
	}
	return fmt.Sprintf("(%s %c %s)", ls, op, rs), eval
}

func genProgram(rng *rand.Rand, n int) (string, []genStmt) {
	arrays := []string{"u", "v", "w", "x"}
	nStmts := rng.Intn(3) + 1
	var stmts []genStmt
	var body strings.Builder
	for s := 0; s < nStmts; s++ {
		out := arrays[rng.Intn(len(arrays))]
		expr, eval := genExpr(rng, arrays, 3)
		stmts = append(stmts, genStmt{out: out, expr: expr, eval: eval})
		fmt.Fprintf(&body, "FORALL (k=1:n)\n  %s(1:n,k) = %s\nend FORALL\n", out, expr)
	}
	src := fmt.Sprintf(`parameter (n=%d, nprocs=4)
real u(n,n), v(n,n), w(n,n), x(n,n)
!hpf$ processors pr(nprocs)
!hpf$ template d(n)
!hpf$ distribute d(block) on pr
!hpf$ align (*,:) with d :: u, v, w, x
%send
`, n, body.String())
	return src, stmts
}

func TestRandomEwiseProgramsMatchInCoreEvaluation(t *testing.T) {
	const n, procs = 16, 4
	rng := rand.New(rand.NewSource(20260704))
	fills := map[string]func(int, int) float64{
		"u": func(i, j int) float64 { return float64(i%5 + j%3) },
		"v": func(i, j int) float64 { return float64(2*(i%3) - j%4) },
		"w": func(i, j int) float64 { return float64(i%7 - 3) },
		"x": func(i, j int) float64 { return float64(j%6 + 1) },
	}
	for trial := 0; trial < 40; trial++ {
		src, stmts := genProgram(rng, n)
		res, err := compiler.CompileSource(src, compiler.Options{MemElems: n * 8})
		if err != nil {
			t.Fatalf("trial %d: compile failed: %v\nprogram:\n%s", trial, err, src)
		}
		out, err := Run(res.Program, sim.Delta(procs), Options{Fill: fills})
		if err != nil {
			t.Fatalf("trial %d: run failed: %v\nprogram:\n%s", trial, err, src)
		}

		// In-core reference: apply the statements in order to full
		// matrices.
		ref := map[string]*matrix.Matrix{}
		for name, f := range fills {
			ref[name] = matrix.New(n, n).Fill(f)
		}
		for _, st := range stmts {
			next := matrix.New(n, n)
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					vals := map[string]float64{}
					for name, m := range ref {
						vals[name] = m.At(i, j)
					}
					next.Set(i, j, st.eval(vals))
				}
			}
			ref[st.out] = next
		}

		// Compare every array the program touched.
		touched := map[string]bool{}
		for _, st := range stmts {
			touched[st.out] = true
		}
		for name := range touched {
			got, err := out.ReadArray(name)
			if err != nil {
				t.Fatalf("trial %d: read %s: %v", trial, name, err)
			}
			if !matrix.Equal(got, ref[name]) {
				t.Fatalf("trial %d: array %s differs from in-core evaluation (maxdiff %g)\nprogram:\n%s",
					trial, name, matrix.MaxAbsDiff(got, ref[name]), src)
			}
		}
	}
}
