package exec

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/mp"
	"github.com/ooc-hpf/passion/internal/sim"
	"github.com/ooc-hpf/passion/internal/trace"
)

// surviveStall keeps the deadlock watchdog from firing on slow CI
// machines while still bounding a genuine hang.
const surviveStall = 5 * time.Second

// surviveOptions is the fully protected configuration: checkpoints to
// resume from, parity to rebuild the dead disk from, and heartbeat
// detection so blocked survivors abort with typed errors.
func surviveOptions(fs iosim.FS) Options {
	return Options{
		FS:           fs,
		Fill:         sweepFills(),
		Checkpoint:   &CheckpointSpec{Every: 1},
		Parity:       true,
		Resilience:   parityResilience(),
		Detect:       &mp.Detector{Heartbeat: 1e-3, Misses: 3},
		StallTimeout: surviveStall,
	}
}

// probeOpCounts runs the protected configuration fault-free and returns
// each rank's fail-stop operation count — the op-index space a kill
// schedule can target.
func probeOpCounts(t *testing.T, res *compiler.Result) []int64 {
	t.Helper()
	counts := make([]int64, res.Program.Procs)
	opts := surviveOptions(iosim.NewMemFS())
	opts.Detect = nil
	opts.OpCounts = counts
	out, err := Run(res.Program, sim.Delta(res.Program.Procs), opts)
	if err != nil {
		t.Fatal(err)
	}
	out.Close()
	return counts
}

// TestRunResilientSurvivesSingleKill is the end-to-end recovery pipeline:
// a rank killed mid-run is detected, agreed on, its disk rebuilt from
// parity, and the run resumed from the last checkpoint — with the final
// array bitwise identical to the failure-free run and every recovery
// counter reconciling against the span timelines of both attempts.
func TestRunResilientSurvivesSingleKill(t *testing.T) {
	for _, force := range []string{"row-slab", "column-slab"} {
		t.Run(force, func(t *testing.T) {
			res := chaosProgram(t, force)
			want := baselineC(t, res)
			mach := sim.Delta(res.Program.Procs)
			counts := probeOpCounts(t, res)

			victim := 2
			opts := surviveOptions(iosim.NewMemFS())
			opts.Kill = []mp.KillSpec{{Rank: victim, Op: counts[victim] / 2}}
			opts.Trace = trace.NewTracer(res.Program.Procs)
			out, err := RunResilient(res.Program, mach, opts, 1)
			if err != nil {
				t.Fatalf("RunResilient: %v", err)
			}
			if out.Attempts != 2 || len(out.Recoveries) != 1 {
				t.Fatalf("attempts=%d recoveries=%d, want 2/1", out.Attempts, len(out.Recoveries))
			}
			rec := out.Recoveries[0]
			if len(rec.Failed) != 1 || rec.Failed[0] != victim {
				t.Fatalf("agreed failed set %v, want [%d]", rec.Failed, victim)
			}

			got, err := out.ReadArray("c")
			if err != nil {
				t.Fatal(err)
			}
			if err := matricesIdentical(got, want); err != nil {
				t.Fatalf("recovered run diverged from failure-free run: %v", err)
			}

			// Recovery counters: the aborted attempt detected and agreed,
			// the rebuild reconstructed every array file of the dead rank,
			// and the successful attempt respawned exactly one rank.
			ac := rec.Stats.TotalComm()
			// DetectSeconds can legitimately be zero: a survivor that
			// blocks after the heartbeat deadline already passed detects
			// for free (the positive charge is pinned in internal/mp).
			if ac.Detections == 0 || ac.DetectSeconds < 0 {
				t.Fatalf("no detection recorded: %+v", ac)
			}
			if ac.Agreements == 0 {
				t.Fatalf("no agreement recorded: %+v", ac)
			}
			if n := int64(len(res.Program.Arrays)); rec.RebuildIO.Reconstructions != n {
				t.Fatalf("Reconstructions = %d, want %d (one per array)", rec.RebuildIO.Reconstructions, n)
			}
			if rec.RebuildSeconds <= 0 {
				t.Fatalf("rebuild charged no simulated time")
			}
			if sc := out.Stats.TotalComm(); sc.Respawns != 1 {
				t.Fatalf("Respawns = %d, want 1", sc.Respawns)
			}

			// Both attempts' spans replay to their statistics exactly —
			// the aborted one included.
			if err := trace.Reconcile(rec.Trace.Spans(), rec.Stats, rec.PerArray); err != nil {
				t.Fatalf("aborted attempt does not reconcile:\n%v", err)
			}
			if err := trace.Reconcile(out.Trace.Spans(), out.Stats, out.PerArray); err != nil {
				t.Fatalf("successful attempt does not reconcile:\n%v", err)
			}
			out.Close()
		})
	}
}

// TestRunResilientKillSweep kills rank 1 at a spread of op indices across
// its whole op space — including during array fill, before the first
// checkpoint commit — and every run must recover to the bitwise-correct
// result without hanging.
func TestRunResilientKillSweep(t *testing.T) {
	res := chaosProgram(t, "row-slab")
	want := baselineC(t, res)
	mach := sim.Delta(res.Program.Procs)
	counts := probeOpCounts(t, res)

	victim := 1
	step := counts[victim] / 6
	if step < 1 {
		step = 1
	}
	for op := int64(0); op < counts[victim]; op += step {
		opts := surviveOptions(iosim.NewMemFS())
		opts.Kill = []mp.KillSpec{{Rank: victim, Op: op}}
		out, err := RunResilient(res.Program, mach, opts, 1)
		if err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		if len(out.Recoveries) != 1 {
			t.Fatalf("op %d: recoveries=%d, want 1", op, len(out.Recoveries))
		}
		got, err := out.ReadArray("c")
		if err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		if err := matricesIdentical(got, want); err != nil {
			t.Fatalf("op %d: diverged: %v", op, err)
		}
		out.Close()
	}
}

// TestRunResilientSecondKillDuringRecovery injects a second rank death
// into the resumed attempt (a failure during recovery): with budget it
// recovers twice and still produces the bitwise-correct result; without
// budget it exits with a clean joined error — never a hang.
func TestRunResilientSecondKillDuringRecovery(t *testing.T) {
	res := chaosProgram(t, "row-slab")
	want := baselineC(t, res)
	mach := sim.Delta(res.Program.Procs)
	counts := probeOpCounts(t, res)

	kills := []mp.KillSpec{
		{Rank: 1, Op: counts[1] / 2},
		// Fires early in the respawned attempt's fresh op numbering,
		// i.e. while the run is still re-establishing itself.
		{Rank: 2, Op: 5},
	}

	opts := surviveOptions(iosim.NewMemFS())
	opts.Kill = kills
	out, err := RunResilient(res.Program, mach, opts, 2)
	if err != nil {
		t.Fatalf("double kill with budget 2: %v", err)
	}
	if out.Attempts != 3 || len(out.Recoveries) != 2 {
		t.Fatalf("attempts=%d recoveries=%d, want 3/2", out.Attempts, len(out.Recoveries))
	}
	got, err := out.ReadArray("c")
	if err != nil {
		t.Fatal(err)
	}
	if err := matricesIdentical(got, want); err != nil {
		t.Fatalf("double-recovered run diverged: %v", err)
	}
	out.Close()

	opts = surviveOptions(iosim.NewMemFS())
	opts.Kill = kills
	if _, err := RunResilient(res.Program, mach, opts, 1); err == nil {
		t.Fatal("recovery budget 1 must not absorb two failures")
	} else if !strings.Contains(err.Error(), "recovery limit") {
		t.Fatalf("want recovery-limit error, got: %v", err)
	}
}

// TestRunResilientSecondFailureMidRebuild loses a survivor's disk while
// the offline rebuild is reading it (a double fault mid-recovery): the
// run must exit with a clean joined error naming both failures, never
// hang or return corrupt data.
func TestRunResilientSecondFailureMidRebuild(t *testing.T) {
	res := chaosProgram(t, "row-slab")
	mach := sim.Delta(res.Program.Procs)
	counts := probeOpCounts(t, res)
	victim := 1
	kill := []mp.KillSpec{{Rank: victim, Op: counts[victim] / 2}}

	// Probe: replay just the aborted attempt to learn how many chaos ops
	// the survivor's file sees before the rebuild pre-pass starts.
	survivorFile := "a.p0.laf"
	probe := iosim.NewChaosFS(iosim.NewMemFS(), iosim.ChaosConfig{})
	popts := surviveOptions(probe)
	popts.Kill = kill
	if _, err := Run(res.Program, mach, popts); err == nil {
		t.Fatal("probe kill run unexpectedly completed")
	}
	preRebuild := probe.FileOps(survivorFile)

	// The same run under RunResilient reaches the rebuild pre-pass with
	// identical per-file op counts (the simulation is deterministic), so
	// a loss scheduled just past them fires during the rebuild's gather
	// reads.
	chaos := iosim.NewChaosFS(iosim.NewMemFS(), iosim.ChaosConfig{
		Schedule: []iosim.ScheduledFault{{File: survivorFile, Op: preRebuild + 1, Kind: iosim.KindDiskLoss}},
	})
	opts := surviveOptions(chaos)
	opts.Kill = kill
	_, err := RunResilient(res.Program, mach, opts, 1)
	if err == nil {
		t.Fatal("double fault mid-rebuild must fail the run")
	}
	if !strings.Contains(err.Error(), "rebuilding ranks") {
		t.Fatalf("error does not name the rebuild failure: %v", err)
	}
	var rk *mp.RankKilledError
	if !errors.As(err, &rk) || rk.Rank != victim {
		t.Fatalf("error does not retain the original kill: %v", err)
	}
	if chaos.Counts().DiskLosses == 0 {
		t.Fatal("scheduled mid-rebuild disk loss never fired")
	}
}

// TestRunResilientUnprotectedDies is the control: a rank loss without
// checkpoint+parity protection is reported as unrecoverable instead of
// being silently absorbed.
func TestRunResilientUnprotectedDies(t *testing.T) {
	res := chaosProgram(t, "row-slab")
	mach := sim.Delta(res.Program.Procs)
	counts := probeOpCounts(t, res)
	kill := []mp.KillSpec{{Rank: 1, Op: counts[1] / 2}}

	opts := Options{
		Fill:         sweepFills(),
		Detect:       &mp.Detector{Heartbeat: 1e-3, Misses: 3},
		StallTimeout: surviveStall,
		Kill:         kill,
	}
	_, err := RunResilient(res.Program, mach, Options{
		Fill: opts.Fill, Detect: opts.Detect, StallTimeout: opts.StallTimeout, Kill: kill,
	}, 4)
	if err == nil {
		t.Fatal("unprotected rank loss must fail")
	}
	if !strings.Contains(err.Error(), "unrecoverable") {
		t.Fatalf("want unrecoverable error, got: %v", err)
	}

	// Plain Run reports the typed failure too.
	_, err = Run(res.Program, mach, opts)
	var rf *mp.RankFailure
	if !errors.As(err, &rf) || len(rf.Failed) != 1 || rf.Failed[0] != 1 {
		t.Fatalf("plain killed run: failed set not surfaced: %v", err)
	}
}

// TestRunResilientNoFailureMatchesRun pins the zero-failure path: with a
// kill schedule that never fires, RunResilient is a plain run — one
// attempt, no recoveries, bitwise-identical output.
func TestRunResilientNoFailureMatchesRun(t *testing.T) {
	res := chaosProgram(t, "column-slab")
	want := baselineC(t, res)
	mach := sim.Delta(res.Program.Procs)

	opts := surviveOptions(iosim.NewMemFS())
	opts.Kill = []mp.KillSpec{{Rank: 0, Op: 1 << 40}}
	out, err := RunResilient(res.Program, mach, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Attempts != 1 || len(out.Recoveries) != 0 {
		t.Fatalf("attempts=%d recoveries=%d, want 1/0", out.Attempts, len(out.Recoveries))
	}
	got, err := out.ReadArray("c")
	if err != nil {
		t.Fatal(err)
	}
	if err := matricesIdentical(got, want); err != nil {
		t.Fatalf("no-failure resilient run diverged: %v", err)
	}
	out.Close()
}
