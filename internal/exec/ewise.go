package exec

import (
	"fmt"

	"github.com/ooc-hpf/passion/internal/bufpool"
	"github.com/ooc-hpf/passion/internal/plan"
)

// runNewSlab allocates the output staging buffer for one slab index.
func (in *interp) runNewSlab(n *plan.NewSlab) error {
	arr, err := in.array(n.Array)
	if err != nil {
		return err
	}
	idx, ok := in.vars[n.Index]
	if !ok {
		return fmt.Errorf("exec: NewSlab index %q is not a live loop variable", n.Index)
	}
	icla, err := arr.NewSlab(in.slabbings[n.Array], idx)
	if err != nil {
		return err
	}
	old := in.bufs[n.Buf]
	in.bufs[n.Buf] = icla
	in.recycle(arr, old)
	return nil
}

// runEwise evaluates an elementwise expression into the output buffer and
// charges the arithmetic to the processor clock.
func (in *interp) runEwise(n *plan.Ewise) error {
	out, ok := in.bufs[n.Out]
	if !ok {
		return fmt.Errorf("exec: Ewise into unknown buffer %q", n.Out)
	}
	if !in.phantom {
		if err := in.evalEwise(n.Expr, out.Data); err != nil {
			return err
		}
	}
	in.proc.Compute(int64(n.Expr.Ops()) * int64(len(out.Data)))
	return nil
}

// evalEwise evaluates e elementwise into dst.
func (in *interp) evalEwise(e plan.EExpr, dst []float64) error {
	switch e := e.(type) {
	case *plan.EConst:
		for i := range dst {
			dst[i] = e.V
		}
		return nil
	case *plan.EBuf:
		b, ok := in.bufs[e.Buf]
		if !ok {
			return fmt.Errorf("exec: Ewise reads unread buffer %q", e.Buf)
		}
		if len(b.Data) != len(dst) {
			return fmt.Errorf("exec: Ewise buffer %q has %d elements, output has %d", e.Buf, len(b.Data), len(dst))
		}
		copy(dst, b.Data)
		return nil
	case *plan.EBin:
		if err := in.evalEwise(e.L, dst); err != nil {
			return err
		}
		tmp := bufpool.GetF64(len(dst))
		defer bufpool.PutF64(tmp)
		if err := in.evalEwise(e.R, tmp); err != nil {
			return err
		}
		switch e.Op {
		case '+':
			for i := range dst {
				dst[i] += tmp[i]
			}
		case '-':
			for i := range dst {
				dst[i] -= tmp[i]
			}
		case '*':
			for i := range dst {
				dst[i] *= tmp[i]
			}
		case '/':
			for i := range dst {
				dst[i] /= tmp[i]
			}
		default:
			return fmt.Errorf("exec: unknown elementwise operator %q", e.Op)
		}
		return nil
	default:
		return fmt.Errorf("exec: unknown elementwise expression %T", e)
	}
}
