package dist_test

import (
	"fmt"

	"github.com/ooc-hpf/passion/internal/dist"
)

// ExampleMap shows the BLOCK distribution the paper's GAXPY arrays use.
func ExampleMap() {
	m := dist.NewBlock(64, 4) // 64 columns over 4 processors
	fmt.Println("block size:", m.BlockSize())
	fmt.Println("owner of column 33:", m.Owner(33))
	proc, local := m.ToLocal(33)
	fmt.Printf("column 33 is local column %d of processor %d\n", local, proc)
	fmt.Println("round trip:", m.ToGlobal(proc, local))
	// Output:
	// block size: 16
	// owner of column 33: 2
	// column 33 is local column 1 of processor 2
	// round trip: 33
}

// ExampleNewArray builds the mapping of array A in the paper's Figure 3:
// a(n,n) aligned (*,:) with a BLOCK-distributed template.
func ExampleNewArray() {
	a, err := dist.NewArray("a", dist.NewCollapsed(64), dist.NewBlock(64, 4))
	if err != nil {
		panic(err)
	}
	fmt.Println(a)
	fmt.Println("local shape on processor 1:", a.LocalShape(1))
	fmt.Println("owner of element (10, 40):", a.Owner(10, 40))
	// Output:
	// a(*,BLOCK)
	// local shape on processor 1: [64 16]
	// owner of element (10, 40): 2
}

// ExampleNewGridArray distributes both dimensions over a 2x2 processor
// grid (HPF "PROCESSORS P(2,2)").
func ExampleNewGridArray() {
	a, err := dist.NewGridArray("bb", dist.NewGrid(2, 2),
		dist.NewBlock(8, 2), dist.NewBlock(8, 2))
	if err != nil {
		panic(err)
	}
	fmt.Println("processors:", a.Procs())
	fmt.Println("local shape:", a.LocalShape(3))
	fmt.Println("owner of (5, 6):", a.Owner(5, 6))
	// Output:
	// processors: 4
	// local shape: [4 4]
	// owner of (5, 6): 3
}
