// Package dist implements HPF-style data mappings: the DISTRIBUTE and
// ALIGN directives' effect of partitioning a global array index space over
// a set of processors, and the global<->local index translations the
// compiler and runtime need.
//
// Indices are 0-based throughout the implementation; the HPF frontend
// converts from Fortran's 1-based convention.
package dist

import (
	"fmt"
)

// Scheme identifies how one array dimension is mapped.
type Scheme int

const (
	// Collapsed means the dimension is not distributed: every processor
	// holds the full extent of this dimension (HPF's "*" alignment).
	Collapsed Scheme = iota
	// Block assigns each processor one contiguous chunk of
	// ceil(N/P) indices (HPF BLOCK).
	Block
	// Cyclic deals indices round-robin (HPF CYCLIC).
	Cyclic
	// BlockCyclic deals blocks of a fixed size round-robin
	// (HPF CYCLIC(k)).
	BlockCyclic
)

// String returns the HPF spelling of the scheme.
func (s Scheme) String() string {
	switch s {
	case Collapsed:
		return "*"
	case Block:
		return "BLOCK"
	case Cyclic:
		return "CYCLIC"
	case BlockCyclic:
		return "CYCLIC(k)"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Map describes the distribution of a single dimension of extent Extent
// over Procs processors.
type Map struct {
	Extent int
	Procs  int
	Scheme Scheme
	// Block is the block size for BlockCyclic; ignored otherwise.
	Block int
}

// NewBlock returns a BLOCK distribution of n indices over p processors.
func NewBlock(n, p int) Map { return Map{Extent: n, Procs: p, Scheme: Block} }

// NewCyclic returns a CYCLIC distribution of n indices over p processors.
func NewCyclic(n, p int) Map { return Map{Extent: n, Procs: p, Scheme: Cyclic} }

// NewBlockCyclic returns a CYCLIC(k) distribution of n indices over p
// processors with block size k.
func NewBlockCyclic(n, p, k int) Map {
	return Map{Extent: n, Procs: p, Scheme: BlockCyclic, Block: k}
}

// NewCollapsed returns an undistributed dimension of extent n: every
// processor holds all n indices.
func NewCollapsed(n int) Map { return Map{Extent: n, Procs: 1, Scheme: Collapsed} }

// Validate reports whether the map is well formed.
func (m Map) Validate() error {
	if m.Extent < 0 {
		return fmt.Errorf("dist: negative extent %d", m.Extent)
	}
	if m.Scheme == Collapsed {
		return nil
	}
	if m.Procs <= 0 {
		return fmt.Errorf("dist: %v distribution needs positive processor count, got %d", m.Scheme, m.Procs)
	}
	if m.Scheme == BlockCyclic && m.Block <= 0 {
		return fmt.Errorf("dist: CYCLIC(k) needs positive block size, got %d", m.Block)
	}
	return nil
}

// blockSize returns the chunk size used by the scheme: ceil(N/P) for
// Block, 1 for Cyclic, k for BlockCyclic.
func (m Map) blockSize() int {
	switch m.Scheme {
	case Block:
		if m.Extent == 0 {
			return 1
		}
		return (m.Extent + m.Procs - 1) / m.Procs
	case Cyclic:
		return 1
	case BlockCyclic:
		return m.Block
	default: // Collapsed
		return m.Extent
	}
}

// BlockSize exposes the scheme's chunk size (ceil(N/P) for BLOCK, 1 for
// CYCLIC, k for CYCLIC(k), the full extent for a collapsed dimension).
func (m Map) BlockSize() int { return m.blockSize() }

// Owner returns the processor owning global index g, or -1 for a collapsed
// dimension (every processor holds it).
func (m Map) Owner(g int) int {
	if m.Scheme == Collapsed {
		return -1
	}
	bs := m.blockSize()
	switch m.Scheme {
	case Block:
		o := g / bs
		if o >= m.Procs { // ragged last block
			o = m.Procs - 1
		}
		return o
	default: // Cyclic, BlockCyclic
		return (g / bs) % m.Procs
	}
}

// ToLocal translates global index g to (owner, local index). For a
// collapsed dimension the owner is -1 and the local index equals g.
func (m Map) ToLocal(g int) (proc, local int) {
	switch m.Scheme {
	case Collapsed:
		return -1, g
	case Block:
		proc = m.Owner(g)
		return proc, g - proc*m.blockSize()
	default:
		bs := m.blockSize()
		course := g / (bs * m.Procs) // which dealing round
		return m.Owner(g), course*bs + g%bs
	}
}

// ToGlobal translates a (processor, local index) pair back to the global
// index. It is the inverse of ToLocal on valid indices.
func (m Map) ToGlobal(proc, local int) int {
	switch m.Scheme {
	case Collapsed:
		return local
	case Block:
		return proc*m.blockSize() + local
	default:
		bs := m.blockSize()
		course := local / bs
		return (course*m.Procs+proc)*bs + local%bs
	}
}

// LocalCount returns how many indices processor proc owns.
func (m Map) LocalCount(proc int) int {
	switch m.Scheme {
	case Collapsed:
		return m.Extent
	case Block:
		bs := m.blockSize()
		lo := proc * bs
		if lo >= m.Extent {
			return 0
		}
		hi := lo + bs
		if hi > m.Extent {
			hi = m.Extent
		}
		return hi - lo
	default:
		bs := m.blockSize()
		full := m.Extent / (bs * m.Procs) // complete dealing rounds
		n := full * bs
		rem := m.Extent - full*bs*m.Procs // indices in the last partial round
		start := proc * bs
		switch {
		case rem > start+bs:
			n += bs
		case rem > start:
			n += rem - start
		}
		return n
	}
}

// LocalRange returns the contiguous global range [lo, hi) owned by proc.
// It is only meaningful for Block (and Collapsed) maps; it panics for
// cyclic schemes, whose local sets are not contiguous.
func (m Map) LocalRange(proc int) (lo, hi int) {
	switch m.Scheme {
	case Collapsed:
		return 0, m.Extent
	case Block:
		bs := m.blockSize()
		lo = proc * bs
		hi = lo + bs
		if lo > m.Extent {
			lo = m.Extent
		}
		if hi > m.Extent {
			hi = m.Extent
		}
		return lo, hi
	default:
		panic(fmt.Sprintf("dist: LocalRange on non-contiguous %v map", m.Scheme))
	}
}

// GlobalIndices returns, in increasing order, the global indices owned by
// proc. Intended for redistribution and testing rather than inner loops.
func (m Map) GlobalIndices(proc int) []int {
	n := m.LocalCount(proc)
	out := make([]int, 0, n)
	for l := 0; l < n; l++ {
		out = append(out, m.ToGlobal(proc, l))
	}
	return out
}

// Array describes the mapping of a (possibly multidimensional) global
// array over a one-dimensional processor arrangement, in the style of the
// paper: at most one dimension is distributed over the processors, the
// others are collapsed.
type Array struct {
	Name string
	// Dims holds one Map per array dimension. Dims[0] is the row
	// (leftmost, fastest-varying in Fortran column-major order)
	// dimension.
	Dims []Map
	// Grid, when non-nil, is the shape of a multi-dimensional processor
	// arrangement: the distributed dimensions of Dims take the grid's
	// axes in order (see NewGridArray). Nil means the classic 1-D
	// arrangement of the paper, with at most one distributed dimension.
	Grid []int
	// axes caches axisOf(). Set once by Validate (which every constructor
	// calls) and read-only afterwards, so sharing the Array across rank
	// goroutines stays race-free.
	axes []int
}

// NewArray builds an array mapping and validates it.
func NewArray(name string, dims ...Map) (*Array, error) {
	a := &Array{Name: name, Dims: dims}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// Validate checks the per-dimension maps against the processor
// arrangement: at most one distributed dimension on the default 1-D
// arrangement, or exactly one distributed dimension per grid axis when a
// Grid is set.
func (a *Array) Validate() error {
	if len(a.Dims) == 0 {
		return fmt.Errorf("dist: array %q has no dimensions", a.Name)
	}
	var distributed []int
	for i, d := range a.Dims {
		if err := d.Validate(); err != nil {
			return fmt.Errorf("dist: array %q dim %d: %w", a.Name, i, err)
		}
		if d.Scheme != Collapsed {
			distributed = append(distributed, i)
		}
	}
	if a.Grid == nil {
		if len(distributed) > 1 {
			return fmt.Errorf("dist: array %q distributes %d dimensions over a 1-D processor grid", a.Name, len(distributed))
		}
		a.axes = a.axisOf()
		return nil
	}
	g := Grid{Shape: a.Grid}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("dist: array %q: %w", a.Name, err)
	}
	if len(distributed) != len(a.Grid) {
		return fmt.Errorf("dist: array %q distributes %d dimensions over a %d-D processor grid",
			a.Name, len(distributed), len(a.Grid))
	}
	for axis, dim := range distributed {
		if a.Dims[dim].Procs != a.Grid[axis] {
			return fmt.Errorf("dist: array %q dim %d maps over %d processors but grid axis %d has %d",
				a.Name, dim, a.Dims[dim].Procs, axis, a.Grid[axis])
		}
	}
	a.axes = a.axisOf()
	return nil
}

// Procs returns the total processor count: the product of the grid axes,
// or the single distributed dimension's count (1 if fully collapsed).
func (a *Array) Procs() int {
	if a.Grid != nil {
		return Grid{Shape: a.Grid}.Size()
	}
	for _, d := range a.Dims {
		if d.Scheme != Collapsed {
			return d.Procs
		}
	}
	return 1
}

// DistributedDim returns the index of the distributed dimension, or -1 if
// none is distributed.
func (a *Array) DistributedDim() int {
	for i, d := range a.Dims {
		if d.Scheme != Collapsed {
			return i
		}
	}
	return -1
}

// GlobalShape returns the global extents.
func (a *Array) GlobalShape() []int {
	s := make([]int, len(a.Dims))
	for i, d := range a.Dims {
		s[i] = d.Extent
	}
	return s
}

// LocalShape returns the extents of the local array on processor proc.
func (a *Array) LocalShape(proc int) []int {
	s := make([]int, len(a.Dims))
	for i, d := range a.Dims {
		if d.Scheme == Collapsed {
			s[i] = d.Extent
		} else {
			s[i] = d.LocalCount(a.ProcCoord(proc, i))
		}
	}
	return s
}

// LocalElems returns the number of elements of the local array on proc.
func (a *Array) LocalElems(proc int) int {
	n := 1
	for _, e := range a.LocalShape(proc) {
		n *= e
	}
	return n
}

// Owner returns the processor that owns the element at the given global
// index vector. For a fully collapsed array it returns 0 (replicated data
// is canonically owned by processor 0).
func (a *Array) Owner(idx ...int) int {
	if len(idx) != len(a.Dims) {
		panic(fmt.Sprintf("dist: Owner on %q wants %d indices, got %d", a.Name, len(a.Dims), len(idx)))
	}
	if a.Grid != nil {
		g := Grid{Shape: a.Grid}
		coords := make([]int, 0, len(a.Grid))
		for i, d := range a.Dims {
			if d.Scheme != Collapsed {
				coords = append(coords, d.Owner(idx[i]))
			}
		}
		return g.Rank(coords...)
	}
	d := a.DistributedDim()
	if d < 0 {
		return 0
	}
	return a.Dims[d].Owner(idx[d])
}

// ToLocal2 is ToLocal for two-dimensional arrays without the slice
// traffic: it returns the owner rank and both local indices as scalars.
// Redistribution visits every element through it.
func (a *Array) ToLocal2(i, j int) (proc, li, lj int) {
	if len(a.Dims) != 2 {
		panic(fmt.Sprintf("dist: ToLocal2 on %q wants a 2-D array, got %d dims", a.Name, len(a.Dims)))
	}
	_, li = a.Dims[0].ToLocal(i)
	_, lj = a.Dims[1].ToLocal(j)
	return a.Owner2(i, j), li, lj
}

// Owner2 is Owner for two-dimensional arrays without the variadic and
// coordinate-vector allocations.
func (a *Array) Owner2(i, j int) int {
	if len(a.Dims) != 2 {
		panic(fmt.Sprintf("dist: Owner2 on %q wants a 2-D array, got %d dims", a.Name, len(a.Dims)))
	}
	if a.Grid != nil {
		// Linearize the owner coordinates exactly as Grid.Rank does:
		// distributed dims take the grid axes in order.
		r, axis := 0, 0
		if a.Dims[0].Scheme != Collapsed {
			r = r*a.Grid[axis] + a.Dims[0].Owner(i)
			axis++
		}
		if a.Dims[1].Scheme != Collapsed {
			r = r*a.Grid[axis] + a.Dims[1].Owner(j)
		}
		return r
	}
	if a.Dims[0].Scheme != Collapsed {
		return a.Dims[0].Owner(i)
	}
	if a.Dims[1].Scheme != Collapsed {
		return a.Dims[1].Owner(j)
	}
	return 0
}

// ToLocal translates a global index vector to the local index vector on
// the owning processor, returning (owner, local indices).
func (a *Array) ToLocal(idx ...int) (proc int, local []int) {
	if len(idx) != len(a.Dims) {
		panic(fmt.Sprintf("dist: ToLocal on %q wants %d indices, got %d", a.Name, len(a.Dims), len(idx)))
	}
	local = make([]int, len(idx))
	for i, d := range a.Dims {
		_, l := d.ToLocal(idx[i])
		local[i] = l
	}
	return a.Owner(idx...), local
}

// String renders the mapping in HPF-directive style.
func (a *Array) String() string {
	s := a.Name + "("
	for i, d := range a.Dims {
		if i > 0 {
			s += ","
		}
		s += d.Scheme.String()
	}
	return s + ")"
}
