package dist

import (
	"testing"
	"testing/quick"
)

func TestGridRankCoordsRoundTrip(t *testing.T) {
	g := NewGrid(2, 3)
	if g.Size() != 6 {
		t.Fatalf("Size = %d", g.Size())
	}
	want := map[[2]int]int{
		{0, 0}: 0, {0, 1}: 1, {0, 2}: 2,
		{1, 0}: 3, {1, 1}: 4, {1, 2}: 5,
	}
	for coords, rank := range want {
		if got := g.Rank(coords[0], coords[1]); got != rank {
			t.Errorf("Rank%v = %d, want %d", coords, got, rank)
		}
		back := g.Coords(rank)
		if back[0] != coords[0] || back[1] != coords[1] {
			t.Errorf("Coords(%d) = %v, want %v", rank, back, coords)
		}
	}
}

func TestGridRoundTripProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		g := NewGrid(int(a%4)+1, int(b%4)+1, int(c%4)+1)
		for r := 0; r < g.Size(); r++ {
			if g.Rank(g.Coords(r)...) != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGridValidation(t *testing.T) {
	if err := NewGrid().Validate(); err == nil {
		t.Error("empty grid should fail")
	}
	if err := NewGrid(2, 0).Validate(); err == nil {
		t.Error("zero axis should fail")
	}
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	g := NewGrid(2, 2)
	expectPanic("wrong arity", func() { g.Rank(1) })
	expectPanic("coordinate out of range", func() { g.Rank(0, 5) })
	expectPanic("rank out of range", func() { g.Coords(4) })
}

func TestGridArrayBlockBlock(t *testing.T) {
	// 12x12 array block-block distributed over a 2x3 grid: local blocks
	// are 6x4.
	g := NewGrid(2, 3)
	a, err := NewGridArray("bb", g, NewBlock(12, 2), NewBlock(12, 3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Procs() != 6 {
		t.Fatalf("Procs = %d", a.Procs())
	}
	for rank := 0; rank < 6; rank++ {
		s := a.LocalShape(rank)
		if s[0] != 6 || s[1] != 4 {
			t.Fatalf("rank %d local shape %v", rank, s)
		}
	}
	// Element (7, 9): row block 1, col block 2 -> rank 1*3+2 = 5.
	if o := a.Owner(7, 9); o != 5 {
		t.Errorf("Owner(7,9) = %d, want 5", o)
	}
	proc, local := a.ToLocal(7, 9)
	if proc != 5 || local[0] != 1 || local[1] != 1 {
		t.Errorf("ToLocal(7,9) = %d %v, want 5 [1 1]", proc, local)
	}
	// ProcCoord decomposes a rank into per-dimension coordinates.
	if a.ProcCoord(5, 0) != 1 || a.ProcCoord(5, 1) != 2 {
		t.Errorf("ProcCoord(5) = (%d,%d)", a.ProcCoord(5, 0), a.ProcCoord(5, 1))
	}
}

func TestGridArrayPartitionExhaustive(t *testing.T) {
	// Every global element is owned by exactly one rank, and local
	// shapes account for all of them.
	g := NewGrid(2, 2)
	a, err := NewGridArray("x", g, NewBlock(10, 2), NewCyclic(7, 2))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, a.Procs())
	for i := 0; i < 10; i++ {
		for j := 0; j < 7; j++ {
			o := a.Owner(i, j)
			counts[o]++
			proc, local := a.ToLocal(i, j)
			if proc != o {
				t.Fatalf("ToLocal owner mismatch at (%d,%d)", i, j)
			}
			// Round-trip through the per-dim maps.
			gi := a.Dims[0].ToGlobal(a.ProcCoord(o, 0), local[0])
			gj := a.Dims[1].ToGlobal(a.ProcCoord(o, 1), local[1])
			if gi != i || gj != j {
				t.Fatalf("grid round trip (%d,%d) -> (%d,%d)", i, j, gi, gj)
			}
		}
	}
	total := 0
	for rank, c := range counts {
		shape := a.LocalShape(rank)
		if c != shape[0]*shape[1] {
			t.Fatalf("rank %d owns %d elements, shape %v", rank, c, shape)
		}
		total += c
	}
	if total != 70 {
		t.Fatalf("partition covers %d of 70", total)
	}
}

func TestGridArrayValidation(t *testing.T) {
	g := NewGrid(2, 2)
	if _, err := NewGridArray("x", g, NewBlock(8, 2), NewCollapsed(8)); err == nil {
		t.Error("grid arity mismatch should fail")
	}
	if _, err := NewGridArray("x", g, NewBlock(8, 2), NewBlock(8, 3)); err == nil {
		t.Error("dim procs vs grid axis mismatch should fail")
	}
	if _, err := NewGridArray("x", NewGrid(0), NewBlock(8, 2)); err == nil {
		t.Error("bad grid should fail")
	}
	// Collapsed dims interleave freely.
	if _, err := NewGridArray("x", NewGrid(2), NewCollapsed(4), NewBlock(8, 2)); err != nil {
		t.Errorf("1-axis grid with collapsed dim should work: %v", err)
	}
}

func TestProcCoordOneDimensional(t *testing.T) {
	a, err := NewArray("a", NewCollapsed(8), NewBlock(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	if a.ProcCoord(3, 1) != 3 {
		t.Errorf("1-D distributed coord = %d, want 3", a.ProcCoord(3, 1))
	}
	if a.ProcCoord(3, 0) != 0 {
		t.Errorf("collapsed coord = %d, want 0", a.ProcCoord(3, 0))
	}
}
