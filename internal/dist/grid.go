package dist

import "fmt"

// Grid is a Cartesian processor arrangement (HPF "PROCESSORS P(r,c)").
// Ranks are linearized row-major: coordinate (c0, c1, ...) maps to
// ((c0*Shape[1])+c1)*Shape[2]+... .
type Grid struct {
	Shape []int
}

// NewGrid returns a grid with the given per-axis extents.
func NewGrid(shape ...int) Grid { return Grid{Shape: shape} }

// Validate reports whether every axis is positive.
func (g Grid) Validate() error {
	if len(g.Shape) == 0 {
		return fmt.Errorf("dist: empty processor grid")
	}
	for i, s := range g.Shape {
		if s <= 0 {
			return fmt.Errorf("dist: grid axis %d has nonpositive extent %d", i, s)
		}
	}
	return nil
}

// Size returns the total number of processors.
func (g Grid) Size() int {
	n := 1
	for _, s := range g.Shape {
		n *= s
	}
	return n
}

// Rank linearizes grid coordinates to a processor rank.
func (g Grid) Rank(coords ...int) int {
	if len(coords) != len(g.Shape) {
		panic(fmt.Sprintf("dist: Rank wants %d coordinates, got %d", len(g.Shape), len(coords)))
	}
	r := 0
	for i, c := range coords {
		if c < 0 || c >= g.Shape[i] {
			panic(fmt.Sprintf("dist: coordinate %d out of range on axis %d (extent %d)", c, i, g.Shape[i]))
		}
		r = r*g.Shape[i] + c
	}
	return r
}

// Coords inverts Rank.
func (g Grid) Coords(rank int) []int {
	if rank < 0 || rank >= g.Size() {
		panic(fmt.Sprintf("dist: rank %d outside grid of %d", rank, g.Size()))
	}
	out := make([]int, len(g.Shape))
	for i := len(g.Shape) - 1; i >= 0; i-- {
		out[i] = rank % g.Shape[i]
		rank /= g.Shape[i]
	}
	return out
}

// Coord returns one coordinate of Coords(rank) without materializing the
// vector — the index-translation hot paths call this per element.
func (g Grid) Coord(rank, axis int) int {
	if rank < 0 || rank >= g.Size() {
		panic(fmt.Sprintf("dist: rank %d outside grid of %d", rank, g.Size()))
	}
	for i := len(g.Shape) - 1; i > axis; i-- {
		rank /= g.Shape[i]
	}
	return rank % g.Shape[axis]
}

// NewGridArray builds an array mapping over a multi-dimensional processor
// grid: the distributed dimensions of dims, in order, take the grid's
// axes in order. Collapsed dimensions are unconstrained.
func NewGridArray(name string, grid Grid, dims ...Map) (*Array, error) {
	a := &Array{Name: name, Dims: dims, Grid: grid.Shape}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// axisOf returns, for each array dimension, the grid axis it is
// distributed over (-1 for collapsed dimensions).
func (a *Array) axisOf() []int {
	out := make([]int, len(a.Dims))
	axis := 0
	for i, d := range a.Dims {
		if d.Scheme == Collapsed {
			out[i] = -1
			continue
		}
		out[i] = axis
		axis++
	}
	return out
}

// grid returns the effective processor grid: the explicit one, or the
// implicit 1-D grid of a single distributed dimension.
func (a *Array) grid() Grid {
	if a.Grid != nil {
		return Grid{Shape: a.Grid}
	}
	return Grid{Shape: []int{a.Procs()}}
}

// ProcCoord returns processor rank's coordinate along array dimension
// dim: its grid coordinate for a distributed dimension, 0 for a collapsed
// one.
func (a *Array) ProcCoord(rank, dim int) int {
	axis := a.axisOfDim(dim)
	if axis < 0 {
		return 0
	}
	if a.Grid == nil {
		return rank
	}
	return Grid{Shape: a.Grid}.Coord(rank, axis)
}

// axisOfDim returns the grid axis of one array dimension, preferring the
// table Validate cached; arrays built as raw literals (tests) fall back
// to recomputing it.
func (a *Array) axisOfDim(dim int) int {
	if a.axes != nil {
		return a.axes[dim]
	}
	return a.axisOf()[dim]
}
