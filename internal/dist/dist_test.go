package dist

import (
	"testing"
	"testing/quick"
)

func TestBlockBasics(t *testing.T) {
	m := NewBlock(64, 4) // blocks of 16
	if bs := m.BlockSize(); bs != 16 {
		t.Fatalf("BlockSize = %d, want 16", bs)
	}
	cases := []struct{ g, proc, local int }{
		{0, 0, 0}, {15, 0, 15}, {16, 1, 0}, {31, 1, 15}, {63, 3, 15},
	}
	for _, c := range cases {
		if got := m.Owner(c.g); got != c.proc {
			t.Errorf("Owner(%d) = %d, want %d", c.g, got, c.proc)
		}
		p, l := m.ToLocal(c.g)
		if p != c.proc || l != c.local {
			t.Errorf("ToLocal(%d) = (%d,%d), want (%d,%d)", c.g, p, l, c.proc, c.local)
		}
		if g := m.ToGlobal(c.proc, c.local); g != c.g {
			t.Errorf("ToGlobal(%d,%d) = %d, want %d", c.proc, c.local, g, c.g)
		}
	}
}

func TestBlockRagged(t *testing.T) {
	// 10 indices over 4 procs: blocks of 3 -> counts 3,3,3,1.
	m := NewBlock(10, 4)
	wantCounts := []int{3, 3, 3, 1}
	for p, w := range wantCounts {
		if got := m.LocalCount(p); got != w {
			t.Errorf("LocalCount(%d) = %d, want %d", p, got, w)
		}
	}
	if o := m.Owner(9); o != 3 {
		t.Errorf("Owner(9) = %d, want 3", o)
	}
	lo, hi := m.LocalRange(3)
	if lo != 9 || hi != 10 {
		t.Errorf("LocalRange(3) = [%d,%d), want [9,10)", lo, hi)
	}
	// A processor beyond the data gets an empty range.
	m2 := NewBlock(4, 8)
	if c := m2.LocalCount(7); c != 0 {
		t.Errorf("LocalCount(7) on tiny extent = %d, want 0", c)
	}
	lo, hi = m2.LocalRange(7)
	if lo != hi {
		t.Errorf("empty LocalRange should have lo==hi, got [%d,%d)", lo, hi)
	}
}

func TestCyclicBasics(t *testing.T) {
	m := NewCyclic(10, 3)
	// indices: p0 gets 0,3,6,9; p1 gets 1,4,7; p2 gets 2,5,8
	wantOwner := []int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0}
	for g, w := range wantOwner {
		if got := m.Owner(g); got != w {
			t.Errorf("Owner(%d) = %d, want %d", g, got, w)
		}
	}
	if c := m.LocalCount(0); c != 4 {
		t.Errorf("LocalCount(0) = %d, want 4", c)
	}
	if c := m.LocalCount(2); c != 3 {
		t.Errorf("LocalCount(2) = %d, want 3", c)
	}
	if g := m.ToGlobal(0, 3); g != 9 {
		t.Errorf("ToGlobal(0,3) = %d, want 9", g)
	}
}

func TestBlockCyclicBasics(t *testing.T) {
	m := NewBlockCyclic(16, 2, 3)
	// blocks of 3 dealt to 2 procs:
	// p0: 0,1,2, 6,7,8, 12,13,14   p1: 3,4,5, 9,10,11, 15
	if got := m.GlobalIndices(0); len(got) != 9 {
		t.Fatalf("p0 count = %d, want 9", len(got))
	}
	want0 := []int{0, 1, 2, 6, 7, 8, 12, 13, 14}
	for i, g := range m.GlobalIndices(0) {
		if g != want0[i] {
			t.Errorf("p0 local %d -> global %d, want %d", i, g, want0[i])
		}
	}
	want1 := []int{3, 4, 5, 9, 10, 11, 15}
	got1 := m.GlobalIndices(1)
	if len(got1) != len(want1) {
		t.Fatalf("p1 count = %d, want %d", len(got1), len(want1))
	}
	for i, g := range got1 {
		if g != want1[i] {
			t.Errorf("p1 local %d -> global %d, want %d", i, g, want1[i])
		}
	}
}

func TestCollapsed(t *testing.T) {
	m := NewCollapsed(8)
	if o := m.Owner(5); o != -1 {
		t.Errorf("collapsed Owner = %d, want -1", o)
	}
	p, l := m.ToLocal(5)
	if p != -1 || l != 5 {
		t.Errorf("collapsed ToLocal = (%d,%d), want (-1,5)", p, l)
	}
	if c := m.LocalCount(3); c != 8 {
		t.Errorf("collapsed LocalCount = %d, want 8", c)
	}
	lo, hi := m.LocalRange(0)
	if lo != 0 || hi != 8 {
		t.Errorf("collapsed LocalRange = [%d,%d), want [0,8)", lo, hi)
	}
}

func TestLocalRangePanicsOnCyclic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("LocalRange on cyclic map should panic")
		}
	}()
	NewCyclic(8, 2).LocalRange(0)
}

// mapCases returns a variety of maps for exhaustive partition checks.
func mapCases() []Map {
	return []Map{
		NewBlock(64, 4), NewBlock(10, 4), NewBlock(1, 4), NewBlock(0, 3),
		NewBlock(7, 7), NewBlock(100, 3),
		NewCyclic(64, 4), NewCyclic(10, 3), NewCyclic(5, 8),
		NewBlockCyclic(64, 4, 5), NewBlockCyclic(17, 3, 2), NewBlockCyclic(9, 2, 4),
	}
}

func TestPartitionExhaustive(t *testing.T) {
	// Every global index is owned by exactly one processor, round-trips
	// through ToLocal/ToGlobal, and LocalCount matches the owned sets.
	for _, m := range mapCases() {
		counts := make([]int, m.Procs)
		for g := 0; g < m.Extent; g++ {
			p := m.Owner(g)
			if p < 0 || p >= m.Procs {
				t.Fatalf("%+v: Owner(%d) = %d out of range", m, g, p)
			}
			counts[p]++
			pp, l := m.ToLocal(g)
			if pp != p {
				t.Fatalf("%+v: ToLocal(%d) proc %d != Owner %d", m, g, pp, p)
			}
			if back := m.ToGlobal(p, l); back != g {
				t.Fatalf("%+v: roundtrip %d -> (%d,%d) -> %d", m, g, p, l, back)
			}
			if l < 0 || l >= m.LocalCount(p) {
				t.Fatalf("%+v: local index %d outside [0,%d)", m, l, m.LocalCount(p))
			}
		}
		total := 0
		for p := 0; p < m.Procs; p++ {
			if counts[p] != m.LocalCount(p) {
				t.Fatalf("%+v: proc %d owns %d indices but LocalCount says %d", m, p, counts[p], m.LocalCount(p))
			}
			total += counts[p]
		}
		if total != m.Extent {
			t.Fatalf("%+v: partition covers %d of %d indices", m, total, m.Extent)
		}
	}
}

func TestGlobalIndicesSortedAndConsistent(t *testing.T) {
	for _, m := range mapCases() {
		for p := 0; p < m.Procs; p++ {
			idx := m.GlobalIndices(p)
			for i, g := range idx {
				if i > 0 && idx[i-1] >= g {
					t.Fatalf("%+v proc %d: indices not increasing: %v", m, p, idx)
				}
				if m.Owner(g) != p {
					t.Fatalf("%+v proc %d: index %d not owned", m, p, g)
				}
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(n, p, k, g uint16) bool {
		extent := int(n%2048) + 1
		procs := int(p%16) + 1
		block := int(k%8) + 1
		gi := int(g) % extent
		for _, m := range []Map{
			NewBlock(extent, procs),
			NewCyclic(extent, procs),
			NewBlockCyclic(extent, procs, block),
		} {
			proc, l := m.ToLocal(gi)
			if m.ToGlobal(proc, l) != gi {
				return false
			}
			if m.Owner(gi) != proc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestArrayMappings(t *testing.T) {
	// Column-block like array A in the paper: a(n, n) align (*, :) ->
	// rows collapsed, columns BLOCK.
	n, p := 64, 4
	a, err := NewArray("a", NewCollapsed(n), NewBlock(n, p))
	if err != nil {
		t.Fatal(err)
	}
	if a.Procs() != p {
		t.Errorf("Procs = %d, want %d", a.Procs(), p)
	}
	if d := a.DistributedDim(); d != 1 {
		t.Errorf("DistributedDim = %d, want 1", d)
	}
	if s := a.LocalShape(2); s[0] != n || s[1] != n/p {
		t.Errorf("LocalShape = %v, want [%d %d]", s, n, n/p)
	}
	if a.LocalElems(0) != n*n/p {
		t.Errorf("LocalElems = %d", a.LocalElems(0))
	}
	if o := a.Owner(10, 33); o != 2 {
		t.Errorf("Owner(10,33) = %d, want 2", o)
	}
	proc, local := a.ToLocal(10, 33)
	if proc != 2 || local[0] != 10 || local[1] != 1 {
		t.Errorf("ToLocal(10,33) = %d %v, want 2 [10 1]", proc, local)
	}
	if s := a.String(); s != "a(*,BLOCK)" {
		t.Errorf("String = %q", s)
	}
}

func TestArrayRowBlock(t *testing.T) {
	// Row-block like array B: b(n, n) align (:, *) -> rows BLOCK,
	// columns collapsed.
	n, p := 64, 4
	b, err := NewArray("b", NewBlock(n, p), NewCollapsed(n))
	if err != nil {
		t.Fatal(err)
	}
	if s := b.LocalShape(0); s[0] != n/p || s[1] != n {
		t.Errorf("LocalShape = %v, want [%d %d]", s, n/p, n)
	}
	if o := b.Owner(17, 3); o != 1 {
		t.Errorf("Owner(17,3) = %d, want 1", o)
	}
}

func TestArrayReplicated(t *testing.T) {
	r, err := NewArray("t", NewCollapsed(8), NewCollapsed(8))
	if err != nil {
		t.Fatal(err)
	}
	if r.Procs() != 1 || r.DistributedDim() != -1 {
		t.Errorf("replicated array misclassified: procs=%d dim=%d", r.Procs(), r.DistributedDim())
	}
	if o := r.Owner(1, 2); o != 0 {
		t.Errorf("replicated Owner = %d, want 0", o)
	}
}

func TestArrayValidation(t *testing.T) {
	if _, err := NewArray("x"); err == nil {
		t.Error("array with no dims should fail")
	}
	if _, err := NewArray("x", NewBlock(8, 2), NewBlock(8, 2)); err == nil {
		t.Error("two distributed dims over 1-D grid should fail")
	}
	if _, err := NewArray("x", Map{Extent: -1, Scheme: Block, Procs: 2}); err == nil {
		t.Error("negative extent should fail")
	}
	if _, err := NewArray("x", Map{Extent: 4, Scheme: BlockCyclic, Procs: 2}); err == nil {
		t.Error("CYCLIC(k) without block size should fail")
	}
	if _, err := NewArray("x", Map{Extent: 4, Scheme: Block}); err == nil {
		t.Error("distributed dim without procs should fail")
	}
}

func TestOwnerPanicsOnArityMismatch(t *testing.T) {
	a, _ := NewArray("a", NewCollapsed(4), NewBlock(4, 2))
	defer func() {
		if recover() == nil {
			t.Error("Owner with wrong arity should panic")
		}
	}()
	a.Owner(1)
}

func TestSchemeString(t *testing.T) {
	if Collapsed.String() != "*" || Block.String() != "BLOCK" ||
		Cyclic.String() != "CYCLIC" || BlockCyclic.String() != "CYCLIC(k)" {
		t.Error("Scheme.String spelling wrong")
	}
	if Scheme(99).String() == "" {
		t.Error("unknown scheme should still render")
	}
}
