package trace

import (
	"strings"
	"testing"
)

func TestTracerEmitAndOrder(t *testing.T) {
	tr := NewTracer(2)
	r0, r1 := tr.Rank(0), tr.Rank(1)
	r1.Emit(Span{Kind: KindCompute, Start: 2, Dur: 1})
	r0.Emit(Span{Kind: KindSlabRead, Label: "a", Start: 0, Dur: 1})
	r0.Emit(Span{Kind: KindCompute, Start: 1, Dur: 1})
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	if spans[0].Rank != 0 || spans[0].Kind != KindSlabRead || spans[0].Label != "a" {
		t.Errorf("first span wrong: %+v", spans[0])
	}
	if spans[2].Rank != 1 {
		t.Errorf("rank grouping wrong: %+v", spans)
	}
	if got := len(tr.RankSpans(0)); got != 2 {
		t.Errorf("RankSpans(0) = %d spans, want 2", got)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	rt := tr.Rank(0)
	if rt != nil {
		t.Fatal("nil tracer should hand out nil rank tracers")
	}
	rt.Emit(Span{Kind: KindCompute, Dur: 1}) // must not panic
	rt.Cross(1, Span{Kind: KindRecoveryComm})
	if tr.Spans() != nil || tr.RankSpans(0) != nil || tr.Procs() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer should report no spans")
	}
	if NewTracer(2).Rank(5) != nil {
		t.Error("out-of-range rank should be nil")
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracerLimit(1, 3)
	rt := tr.Rank(0)
	for i := 0; i < 5; i++ {
		rt.Emit(Span{Kind: KindCompute, Start: float64(i), Dur: 1})
	}
	spans := tr.RankSpans(0)
	if len(spans) != 3 {
		t.Fatalf("ring kept %d spans, want 3", len(spans))
	}
	for i, s := range spans {
		if s.Start != float64(i+2) {
			t.Errorf("ring span %d starts at %g, want %g (newest kept, order preserved)", i, s.Start, float64(i+2))
		}
	}
	if tr.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", tr.Dropped())
	}
}

func TestTracerCross(t *testing.T) {
	tr := NewTracer(2)
	tr.Rank(0).Cross(1, Span{Kind: KindRecoveryComm, N: 3, Bytes: 64})
	if len(tr.RankSpans(0)) != 0 {
		t.Error("cross span should not land on the emitting rank")
	}
	got := tr.RankSpans(1)
	if len(got) != 1 || got[0].Rank != 1 || got[0].N != 3 {
		t.Errorf("cross span = %+v, want one span on rank 1", got)
	}
}

func TestGantt(t *testing.T) {
	tr := NewTracer(2)
	tr.Rank(0).Emit(Span{Kind: KindSlabRead, Label: "a", Start: 0, Dur: 5})
	tr.Rank(0).Emit(Span{Kind: KindCompute, Start: 5, Dur: 5})
	tr.Rank(1).Emit(Span{Kind: KindWait, Start: 0, Dur: 10})
	// Deferred and overlay spans are not painted.
	tr.Rank(1).Emit(Span{Kind: KindSlabWrite, Start: 0, Dur: 10, Deferred: true})
	tr.Rank(1).Emit(Span{Kind: KindNode, Label: "loop", Start: 0, Dur: 10})
	out := tr.Gantt(2, 20)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("gantt lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "RRRRRRRRRRCCCCCCCCCC") {
		t.Errorf("lane 0 wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], strings.Repeat("w", 20)) {
		t.Errorf("lane 1 wrong: %q", lines[2])
	}
}

func TestGanttEmpty(t *testing.T) {
	if out := NewTracer(2).Gantt(2, 40); !strings.Contains(out, "no spans") {
		t.Errorf("empty gantt = %q", out)
	}
	tr := NewTracer(1)
	tr.Rank(0).Emit(Span{Kind: KindCompute, Start: 0, Dur: 1})
	if out := tr.Gantt(1, 2); !strings.Contains(out, "no spans") {
		t.Errorf("narrow gantt should refuse: %q", out)
	}
}

func TestSummary(t *testing.T) {
	tr := NewTracer(2)
	tr.Rank(0).Emit(Span{Kind: KindSlabRead, Label: "a", Start: 0, Dur: 2})
	tr.Rank(1).Emit(Span{Kind: KindSlabRead, Label: "a", Start: 1, Dur: 1})
	tr.Rank(0).Emit(Span{Kind: KindCompute, Start: 2, Dur: 3})
	tr.Rank(0).Emit(Span{Kind: KindSlabRead, Label: "a", Start: 4, Dur: 7, Deferred: true})
	out := tr.Summary()
	if !strings.Contains(out, "slab-read a ") || !strings.Contains(out, "3.00s") {
		t.Errorf("summary wrong:\n%s", out)
	}
	if !strings.Contains(out, "slab-read a (overlapped)") || !strings.Contains(out, "7.00s") {
		t.Errorf("overlapped line missing:\n%s", out)
	}
	if !strings.Contains(NewTracer(1).Summary(), "no spans") {
		t.Error("empty summary wrong")
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if strings.HasPrefix(name, "Kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		back, ok := KindFromString(name)
		if !ok || back != k {
			t.Errorf("KindFromString(%q) = %v, %v; want %v", name, back, ok, k)
		}
	}
	if _, ok := KindFromString("nonsense"); ok {
		t.Error("unknown name should not resolve")
	}
}
