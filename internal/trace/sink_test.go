package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// sinkSampleTracer mirrors sampleTracer but attaches sink before any
// Rank handle exists, as SetSink requires.
func sinkSampleTracer(sink Sink, queue int) *Tracer {
	tr := NewTracer(2)
	tr.SetSink(sink, queue)
	r0, r1 := tr.Rank(0), tr.Rank(1)
	r0.Emit(Span{Kind: KindCompute, Start: 0, Dur: 0.5, N: 1000})
	r0.Emit(Span{Kind: KindSlabRead, Label: "a", Start: 0.5, Dur: 0.25, N: 3, Bytes: 4096})
	r0.Emit(Span{Kind: KindReadReq, Label: "a", Start: 0.5, Bytes: 4096})
	r0.Emit(Span{Kind: KindSend, Start: 0.75, Dur: 0.125, Peer: 1, Flow: 0xdeadbeef, Bytes: 64})
	r0.Emit(Span{Kind: KindSlabWrite, Label: "c", Start: 1.0, Dur: 0.0625, Deferred: true, N: 1, Bytes: 512})
	r0.Emit(Span{Kind: KindParityRMW, Label: "c", Start: 1.0, N: 3, M: 2, Bytes: 768, Bytes2: 256})
	r1.Emit(Span{Kind: KindWait, Start: 0, Dur: 0.875, Peer: 0, Flow: 0xdeadbeef})
	r1.Emit(Span{Kind: KindRetry, Label: "b", Start: 0.9, Dur: 0.001953125})
	r1.Emit(Span{Kind: KindCollective, Label: "sum", Start: 0.9})
	r0.Cross(1, Span{Kind: KindRecoveryComm, Start: 1.0, N: 7, Bytes: 3584})
	return tr
}

func TestNDJSONStreamRoundTripExact(t *testing.T) {
	var buf bytes.Buffer
	sink := NewNDJSONSink(&buf)
	tr := sinkSampleTracer(sink, 0)
	if err := tr.CloseSink(); err != nil {
		t.Fatal(err)
	}
	got, procs, dropped, err := ParseNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if procs != 2 {
		t.Fatalf("procs = %d, want 2", procs)
	}
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	want := tr.Spans()
	if len(got) != len(want) {
		t.Fatalf("stream kept %d of %d spans", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("span %d: stream changed\n%+v to\n%+v", i, want[i], got[i])
		}
	}
}

// The streamed NDJSON spans and the buffered Chrome export of the same
// run must be the same sequence, to the digit — the tentpole's
// correctness bar at the unit level.
func TestStreamMatchesBufferedExport(t *testing.T) {
	var ndjson bytes.Buffer
	tr := sinkSampleTracer(NewNDJSONSink(&ndjson), 0)
	if err := tr.CloseSink(); err != nil {
		t.Fatal(err)
	}
	var chrome bytes.Buffer
	if err := tr.ExportChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	streamed, sp, sd, err := ParseNDJSON(&ndjson)
	if err != nil {
		t.Fatal(err)
	}
	buffered, bp, bd, err := ParseChromeTraceInfo(chrome.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if sp != bp || sd != bd {
		t.Fatalf("stream (procs=%d dropped=%d) disagrees with export (procs=%d dropped=%d)", sp, sd, bp, bd)
	}
	if len(streamed) != len(buffered) {
		t.Fatalf("stream has %d spans, export has %d", len(streamed), len(buffered))
	}
	for i := range buffered {
		if streamed[i] != buffered[i] {
			t.Errorf("span %d: stream %+v, export %+v", i, streamed[i], buffered[i])
		}
	}
}

func TestChromeSinkStreamParses(t *testing.T) {
	var buf bytes.Buffer
	tr := sinkSampleTracer(nil, 0) // buffered only
	cs := NewChromeSink(&buf, tr.Procs())
	for _, s := range tr.Spans() {
		cs.Emit(s.Rank, s)
	}
	cs.ReportDropped(tr.Dropped())
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("streamed chrome trace does not validate: %v", err)
	}
	got, procs, dropped, err := ParseChromeTraceInfo(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if procs != 2 || dropped != 0 {
		t.Fatalf("procs=%d dropped=%d, want 2, 0", procs, dropped)
	}
	want := tr.Spans()
	if len(got) != len(want) {
		t.Fatalf("chrome stream kept %d of %d spans", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("span %d changed: %+v to %+v", i, want[i], got[i])
		}
	}
}

// blockingSink stalls every Emit until released — the pathological slow
// consumer. gate is closed once to unblock all pending and future Emits.
type blockingSink struct {
	gate  chan struct{}
	mu    sync.Mutex
	count int64
}

func (b *blockingSink) Emit(rank int, s Span) {
	<-b.gate
	b.mu.Lock()
	b.count++
	b.mu.Unlock()
}
func (b *blockingSink) Flush() error { return nil }
func (b *blockingSink) Close() error { return nil }

// A sink that never keeps up must not block the emitting rank (the
// simulated clock), must bound buffered memory to the hand-off queue,
// and must account every span: delivered + dropped == emitted, exactly.
func TestSinkBackpressureBoundsAndCounts(t *testing.T) {
	const emitted = 10000
	const queue = 8
	sink := &blockingSink{gate: make(chan struct{})}
	tr := NewTracer(1)
	tr.SetSink(sink, queue)
	r0 := tr.Rank(0)
	// The sink is fully stalled: if offer ever blocked, this loop (the
	// simulated clock's stand-in) would deadlock and the test would time
	// out.
	for i := 0; i < emitted; i++ {
		r0.Emit(Span{Kind: KindCompute, Start: float64(i), Dur: 1})
	}
	if got := tr.SinkDropped(); got < emitted-queue-1 {
		t.Fatalf("SinkDropped = %d before drain; want >= %d (queue %d must bound buffering)", got, emitted-queue-1, queue)
	}
	close(sink.gate)
	if err := tr.CloseSink(); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	delivered := sink.count
	sink.mu.Unlock()
	dropped := tr.SinkDropped()
	if delivered+dropped != emitted {
		t.Fatalf("delivered %d + dropped %d != emitted %d", delivered, dropped, emitted)
	}
	if dropped == 0 {
		t.Fatal("expected drops from a stalled sink")
	}
	if got := tr.Dropped(); got != dropped {
		t.Fatalf("Dropped() = %d does not fold in sink drops (%d)", got, dropped)
	}
}

// A slow sink attached in blocking mode (ooc-run -trace-stream) sheds
// nothing: emitters wait for queue space, so every span arrives and the
// stream stays exactly reconcilable.
func TestBlockingSinkLosesNothing(t *testing.T) {
	const emitted = 5000
	slow := &blockingSink{gate: make(chan struct{})}
	go func() {
		for i := 0; i < emitted; i++ {
			slow.gate <- struct{}{}
		}
	}()
	tr := NewTracer(1)
	tr.SetSinkBlocking(slow, 2)
	r0 := tr.Rank(0)
	for i := 0; i < emitted; i++ {
		r0.Emit(Span{Kind: KindCompute, Start: float64(i), Dur: 1})
	}
	if err := tr.CloseSink(); err != nil {
		t.Fatal(err)
	}
	slow.mu.Lock()
	delivered := slow.count
	slow.mu.Unlock()
	if delivered != emitted {
		t.Fatalf("blocking sink delivered %d of %d spans", delivered, emitted)
	}
	if got := tr.Dropped(); got != 0 {
		t.Fatalf("Dropped() = %d on a blocking stream, want 0", got)
	}
}

func TestCloseSinkIdempotentAndShared(t *testing.T) {
	var buf bytes.Buffer
	a := NewTracer(1)
	a.SetSink(NewNDJSONSink(&buf), 0)
	ra := a.Rank(0)
	ra.Emit(Span{Kind: KindCompute, Start: 0, Dur: 1})

	b := NewTracer(1)
	b.AdoptSink(a)
	rb := b.Rank(0)
	rb.Emit(Span{Kind: KindCompute, Start: 1, Dur: 1})

	if err := b.CloseSink(); err != nil {
		t.Fatal(err)
	}
	if err := a.CloseSink(); err != nil {
		t.Fatalf("second CloseSink on shared stream: %v", err)
	}
	if err := b.CloseSink(); err != nil {
		t.Fatalf("repeated CloseSink: %v", err)
	}
	spans, _, dropped, err := ParseNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || dropped != 0 {
		t.Fatalf("shared stream carried %d spans (dropped %d), want 2, 0", len(spans), dropped)
	}
	if spans[0].Start != 0 || spans[1].Start != 1 {
		t.Fatalf("adopting tracer's spans missing from the stream: %+v", spans)
	}

	var none Tracer
	if err := none.CloseSink(); err != nil {
		t.Fatalf("CloseSink without a sink: %v", err)
	}
}

func TestNDJSONTrailerRecordsDrops(t *testing.T) {
	var buf bytes.Buffer
	s := NewNDJSONSink(&buf)
	s.Emit(0, Span{Kind: KindCompute, Start: 0, Dur: 1})
	s.ReportDropped(3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, dropped, err := ParseNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 3 {
		t.Fatalf("trailer dropped = %d, want 3", dropped)
	}
}

func TestChromeSinkRecordsDrops(t *testing.T) {
	var buf bytes.Buffer
	cs := NewChromeSink(&buf, 1)
	cs.Emit(0, Span{Kind: KindCompute, Start: 0, Dur: 1})
	cs.ReportDropped(7)
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, dropped, err := ParseChromeTraceInfo(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 7 {
		t.Fatalf("dropped_spans = %d, want 7", dropped)
	}
}

func TestParseNDJSONRejectsBadStreams(t *testing.T) {
	afterTrailer := `{"rank":0,"kind":"compute","start_s":0,"dur_s":1}
{"ndjson_trailer":true,"spans":1,"dropped":0}
{"rank":0,"kind":"compute","start_s":1,"dur_s":1}
`
	if _, _, _, err := ParseNDJSON(strings.NewReader(afterTrailer)); err == nil {
		t.Fatal("content after the trailer must be rejected")
	}
	countMismatch := `{"rank":0,"kind":"compute","start_s":0,"dur_s":1}
{"ndjson_trailer":true,"spans":2,"dropped":0}
`
	if _, _, _, err := ParseNDJSON(strings.NewReader(countMismatch)); err == nil {
		t.Fatal("trailer span-count mismatch must be rejected")
	}
	unknownField := `{"rank":0,"kind":"compute","start_s":0,"nope":1}
`
	if _, _, _, err := ParseNDJSON(strings.NewReader(unknownField)); err == nil {
		t.Fatal("unknown span fields must be rejected")
	}
	// A stream cut off mid-run (no trailer) still parses.
	cutOff := `{"rank":0,"kind":"compute","start_s":0,"dur_s":1}
`
	spans, procs, dropped, err := ParseNDJSON(strings.NewReader(cutOff))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || procs != 1 || dropped != 0 {
		t.Fatalf("cut-off stream parsed as %d spans, %d procs, %d dropped", len(spans), procs, dropped)
	}
}
