package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Span is one interval of simulated time attributed to an activity on one
// processor.
type Span struct {
	Proc  int
	Kind  string // "compute", "send", "wait", "io-read", "io-write", "io-wait"
	Label string // e.g. the array name for I/O spans
	Start float64
	End   float64
}

// SpanLog collects spans from all processors of a run. The zero value is
// not usable; create one with NewSpanLog. A nil *SpanLog is safe to
// record into (a no-op), so instrumentation can stay unconditional.
type SpanLog struct {
	mu    sync.Mutex
	spans []Span
}

// NewSpanLog returns an empty log.
func NewSpanLog() *SpanLog { return &SpanLog{} }

// Record appends a span; zero-length and negative spans are dropped. Safe
// for concurrent use and for a nil receiver.
func (l *SpanLog) Record(proc int, kind, label string, start, end float64) {
	if l == nil || end <= start {
		return
	}
	l.mu.Lock()
	l.spans = append(l.spans, Span{Proc: proc, Kind: kind, Label: label, Start: start, End: end})
	l.mu.Unlock()
}

// Spans returns a copy of the recorded spans, ordered by processor then
// start time.
func (l *SpanLog) Spans() []Span {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]Span, len(l.spans))
	copy(out, l.spans)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Proc != out[j].Proc {
			return out[i].Proc < out[j].Proc
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// kindGlyphs maps span kinds to their timeline glyphs.
var kindGlyphs = map[string]rune{
	"compute":  'C',
	"send":     's',
	"wait":     'w',
	"io-read":  'R',
	"io-write": 'W',
	"io-wait":  'o',
}

// Gantt renders an ASCII timeline: one lane per processor, width columns
// spanning [0, horizon] where horizon is the latest span end. Later spans
// overpaint earlier ones within a cell; idle time shows as '.'.
func (l *SpanLog) Gantt(procs, width int) string {
	spans := l.Spans()
	if len(spans) == 0 || width < 10 {
		return "(no spans recorded)\n"
	}
	horizon := 0.0
	for _, s := range spans {
		if s.End > horizon {
			horizon = s.End
		}
	}
	lanes := make([][]rune, procs)
	for i := range lanes {
		lanes[i] = []rune(strings.Repeat(".", width))
	}
	for _, s := range spans {
		if s.Proc < 0 || s.Proc >= procs {
			continue
		}
		glyph, ok := kindGlyphs[s.Kind]
		if !ok {
			glyph = '?'
		}
		lo := int(s.Start / horizon * float64(width))
		hi := int(s.End / horizon * float64(width))
		if hi == lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		for c := lo; c < hi; c++ {
			lanes[s.Proc][c] = glyph
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline over %.2f simulated seconds (C compute, R read, W write, o io-wait, s send, w recv-wait, . idle)\n", horizon)
	for p, lane := range lanes {
		fmt.Fprintf(&b, "p%-3d |%s|\n", p, string(lane))
	}
	return b.String()
}

// Summary aggregates span time per (kind, label) pair, for text reports.
func (l *SpanLog) Summary() string {
	spans := l.Spans()
	if len(spans) == 0 {
		return "(no spans recorded)\n"
	}
	totals := map[string]float64{}
	for _, s := range spans {
		key := s.Kind
		if s.Label != "" {
			key += " " + s.Label
		}
		totals[key] += s.End - s.Start
	}
	keys := make([]string, 0, len(totals))
	for k := range totals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-24s %10.2fs\n", k, totals[k])
	}
	return b.String()
}
