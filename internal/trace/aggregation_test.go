package trace

import (
	"reflect"
	"testing"
)

// probeStats sets field i of a statistics struct to a distinguishable
// nonzero value and returns whether it managed to (unknown kinds fail
// the test at the call site).
func probeField(v reflect.Value, i int) bool {
	f := v.Field(i)
	switch f.Kind() {
	case reflect.Int64:
		f.SetInt(3)
	case reflect.Float64:
		f.SetFloat(3.5)
	case reflect.Struct:
		h, ok := f.Addr().Interface().(*SizeHistogram)
		if !ok {
			return false
		}
		h.Observe(1024)
	default:
		return false
	}
	return true
}

// TestEveryIOStatsFieldAggregated probes each field of IOStats
// individually: setting only that field on one side must change the
// result of Add, MaxIO and the Stats totals. A newly added counter that
// is not aggregated (or of an unsupported kind) fails here, so the
// hand-written-fold bug class cannot come back.
func TestEveryIOStatsFieldAggregated(t *testing.T) {
	typ := reflect.TypeOf(IOStats{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		var probe IOStats
		if !probeField(reflect.ValueOf(&probe).Elem(), i) {
			t.Fatalf("IOStats.%s has a kind combineFields cannot aggregate", name)
		}
		var sum IOStats
		sum.Add(probe)
		if sum != probe {
			t.Errorf("IOStats.Add drops field %s", name)
		}
		s := NewStats(2)
		s.Procs[1].IO = probe
		if got := s.MaxIO(); got != probe {
			t.Errorf("Stats.MaxIO drops field %s", name)
		}
		if got := s.TotalIO(); got != probe {
			t.Errorf("Stats.TotalIO drops field %s", name)
		}
	}
}

func TestEveryCommStatsFieldAggregated(t *testing.T) {
	typ := reflect.TypeOf(CommStats{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		var probe CommStats
		if !probeField(reflect.ValueOf(&probe).Elem(), i) {
			t.Fatalf("CommStats.%s has a kind combineFields cannot aggregate", name)
		}
		var sum CommStats
		sum.Add(probe)
		if sum != probe {
			t.Errorf("CommStats.Add drops field %s", name)
		}
		s := NewStats(2)
		s.Procs[1].Comm = probe
		if got := s.TotalComm(); got != probe {
			t.Errorf("Stats.TotalComm drops field %s", name)
		}
	}
}

// TestMaxIOTakesPerFieldMaximum pins the semantics the old hand-written
// fold implemented: each field maximized independently across procs.
func TestMaxIOTakesPerFieldMaximum(t *testing.T) {
	s := NewStats(2)
	s.Procs[0].IO.SlabReads = 10
	s.Procs[0].IO.Seconds = 1.5
	s.Procs[1].IO.SlabReads = 4
	s.Procs[1].IO.Seconds = 2.5
	s.Procs[1].IO.ReadSizes.Observe(100)
	m := s.MaxIO()
	if m.SlabReads != 10 || m.Seconds != 2.5 || m.ReadSizes.Total() != 1 {
		t.Errorf("MaxIO = %+v", m)
	}
}
