package trace

import (
	"fmt"
	"sort"
	"strings"
)

// phaseOf buckets a span into a reportable phase. Overlay kinds and
// pure instants return "" and are left out of time attribution;
// deferred transfers get their own phases because their seconds are
// not on the synchronous timeline (the stalls they cause are, as
// "io-stall").
func phaseOf(s Span) string {
	switch s.Kind {
	case KindCompute:
		return "compute"
	case KindSend:
		return "comm-send"
	case KindWait:
		return "comm-wait"
	case KindIOWait:
		return "io-stall"
	case KindSlabRead:
		if s.Deferred {
			return "io-read (overlapped)"
		}
		return "io-read"
	case KindSlabWrite:
		if s.Deferred {
			return "io-write (overlapped)"
		}
		return "io-write"
	case KindRetry:
		return "retry-backoff"
	case KindParitySync, KindReconstruct, KindOpenRecover:
		return "recovery"
	default:
		return ""
	}
}

// timelinePhase reports whether the phase occupies the issuing rank's
// synchronous clock (overlapped transfers and backoff folded into
// other spans do not).
func timelinePhase(s Span) bool {
	if s.Deferred {
		return false
	}
	switch s.Kind {
	case KindCompute, KindSend, KindWait, KindIOWait, KindSlabRead, KindSlabWrite, KindParitySync:
		return true
	}
	return false
}

// PhaseShare is one phase's slice of the run in the attribution report.
type PhaseShare struct {
	Phase   string
	PerRank []float64
	// Total is the phase's simulated seconds summed over ranks; Pct its
	// mean per-rank share of the elapsed time, in percent.
	Total float64
	Pct   float64
	// Imbalance is max/mean over the ranks that are nonzero anywhere in
	// the run; 1 means perfectly balanced.
	Imbalance float64
}

// PhaseReport attributes every timeline span to a phase and returns the
// shares sorted by total time, largest first. Overlapped transfer time
// is reported too (flagged in the phase name) but does not count toward
// the elapsed timeline.
func PhaseReport(spans []Span, procs int, elapsed float64) []PhaseShare {
	perPhase := map[string][]float64{}
	for _, s := range spans {
		if s.Dur <= 0 || s.Rank < 0 || s.Rank >= procs {
			continue
		}
		ph := phaseOf(s)
		if ph == "" {
			continue
		}
		lane := perPhase[ph]
		if lane == nil {
			lane = make([]float64, procs)
			perPhase[ph] = lane
		}
		lane[s.Rank] += s.Dur
	}
	shares := make([]PhaseShare, 0, len(perPhase))
	for ph, lane := range perPhase {
		sh := PhaseShare{Phase: ph, PerRank: lane}
		max := 0.0
		for _, v := range lane {
			sh.Total += v
			if v > max {
				max = v
			}
		}
		mean := sh.Total / float64(procs)
		if elapsed > 0 {
			sh.Pct = mean / elapsed * 100
		}
		if mean > 0 {
			sh.Imbalance = max / mean
		}
		shares = append(shares, sh)
	}
	sort.Slice(shares, func(i, j int) bool {
		if shares[i].Total != shares[j].Total {
			return shares[i].Total > shares[j].Total
		}
		return shares[i].Phase < shares[j].Phase
	})
	return shares
}

// FormatPhaseReport renders the attribution table.
func FormatPhaseReport(shares []PhaseShare, elapsed float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "phase attribution over %.2f simulated seconds (pct = mean per-rank share, imbalance = max/mean):\n", elapsed)
	for _, sh := range shares {
		fmt.Fprintf(&b, "  %-22s %10.2fs  %6.1f%%  imbalance %.2f\n", sh.Phase, sh.Total, sh.Pct, sh.Imbalance)
	}
	if len(shares) == 0 {
		b.WriteString("  (no timeline spans recorded)\n")
	}
	return b.String()
}
