package trace

import (
	"math"
	"strings"
	"testing"
)

func TestPhaseReportSharesAndImbalance(t *testing.T) {
	// Two ranks over a 4-second run: rank 0 computes 3s, rank 1 computes
	// 1s, both read 1s; rank 1's deferred write must not count.
	spans := []Span{
		{Rank: 0, Kind: KindCompute, Start: 0, Dur: 3},
		{Rank: 0, Kind: KindSlabRead, Label: "a", Start: 3, Dur: 1},
		{Rank: 1, Kind: KindCompute, Start: 0, Dur: 1},
		{Rank: 1, Kind: KindSlabRead, Label: "a", Start: 1, Dur: 1},
		{Rank: 1, Kind: KindSlabWrite, Label: "c", Start: 2, Dur: 5, Deferred: true},
		{Rank: 1, Kind: KindNode, Label: "loop i", Start: 0, Dur: 4}, // overlay: excluded
	}
	rep := PhaseReport(spans, 2, 4)
	byPhase := map[string]PhaseShare{}
	for _, p := range rep {
		byPhase[p.Phase] = p
	}
	c, ok := byPhase["compute"]
	if !ok {
		t.Fatal("no compute phase in report")
	}
	if c.Total != 4 {
		t.Errorf("compute total = %v, want 4", c.Total)
	}
	// mean share = 4s / (2 ranks * 4s) = 50%; imbalance = 3 / 2 = 1.5.
	if math.Abs(c.Pct-50) > 1e-9 {
		t.Errorf("compute pct = %v, want 50", c.Pct)
	}
	if math.Abs(c.Imbalance-1.5) > 1e-9 {
		t.Errorf("compute imbalance = %v, want 1.5", c.Imbalance)
	}
	if w, ok := byPhase["io-write (overlapped)"]; !ok || w.Total != 5 {
		t.Errorf("deferred write should report as overlapped (got %+v)", byPhase)
	}
	if rep[0].Phase != "io-write (overlapped)" {
		t.Errorf("report not sorted by total desc: first is %q", rep[0].Phase)
	}
	out := FormatPhaseReport(rep, 4)
	if !strings.Contains(out, "compute") || !strings.Contains(out, "imbalance") {
		t.Errorf("formatted report missing content:\n%s", out)
	}
}

func TestCriticalPathHopsToSender(t *testing.T) {
	// Rank 1 waits for rank 0's message, so the chain must route through
	// rank 0's compute, then finish with rank 1's own compute.
	spans := []Span{
		{Rank: 0, Kind: KindCompute, Start: 0, Dur: 1},
		{Rank: 0, Kind: KindSend, Start: 1, Dur: 0.1, Peer: 1},
		{Rank: 1, Kind: KindWait, Start: 0, Dur: 1.1, Peer: 0},
		{Rank: 1, Kind: KindCompute, Start: 1.1, Dur: 1},
	}
	segs, elapsed := CriticalPath(spans, 2)
	if elapsed != 2.1 {
		t.Fatalf("elapsed = %v, want 2.1", elapsed)
	}
	want := []PathSeg{
		{Rank: 0, Phase: "compute", Seconds: 1},
		{Rank: 0, Phase: "comm-send", Seconds: 0.1},
		{Rank: 1, Phase: "compute", Seconds: 1},
	}
	if len(segs) != len(want) {
		t.Fatalf("path %+v, want %+v", segs, want)
	}
	for i := range want {
		if segs[i].Rank != want[i].Rank || segs[i].Phase != want[i].Phase ||
			math.Abs(segs[i].Seconds-want[i].Seconds) > 1e-9 {
			t.Errorf("seg %d = %+v, want %+v", i, segs[i], want[i])
		}
	}
	var sum float64
	for _, s := range segs {
		sum += s.Seconds
	}
	if math.Abs(sum-elapsed) > 1e-9 {
		t.Errorf("path sums to %v, elapsed is %v", sum, elapsed)
	}
}

func TestCriticalPathCoversGapsWithIdle(t *testing.T) {
	spans := []Span{
		{Rank: 0, Kind: KindCompute, Start: 2, Dur: 1},
	}
	segs, elapsed := CriticalPath(spans, 1)
	if elapsed != 3 {
		t.Fatalf("elapsed = %v", elapsed)
	}
	if len(segs) != 2 || segs[0].Phase != "idle" || segs[0].Seconds != 2 || segs[1].Phase != "compute" {
		t.Fatalf("path %+v, want idle 2s then compute 1s", segs)
	}
}

func TestTopBottlenecksAggregates(t *testing.T) {
	segs := []PathSeg{
		{Rank: 0, Phase: "compute", Seconds: 1},
		{Rank: 1, Phase: "io-read", Seconds: 3},
		{Rank: 0, Phase: "compute", Seconds: 2},
	}
	top := TopBottlenecks(segs, 1)
	if len(top) != 1 || top[0].Rank != 0 || top[0].Phase != "compute" || top[0].Seconds != 3 {
		t.Fatalf("top = %+v", top)
	}
}

func TestFormatCriticalPathElidesShortSegments(t *testing.T) {
	segs := make([]PathSeg, 0, 101)
	segs = append(segs, PathSeg{Rank: 0, Phase: "io-read", Seconds: 10})
	for i := 0; i < 100; i++ {
		segs = append(segs, PathSeg{Rank: i % 2, Phase: "compute", Seconds: 0.001}, PathSeg{Rank: 1, Phase: "comm-wait", Seconds: 0.001})
	}
	out := FormatCriticalPath(segs, 10.2, 3)
	if !strings.Contains(out, "short") {
		t.Errorf("long chains should elide short segments:\n%s", out)
	}
	if n := len(strings.Split(out, "\n")); n > 10 {
		t.Errorf("formatted path is %d lines", n)
	}
}
