package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestIOStatsAdd(t *testing.T) {
	a := IOStats{SlabReads: 1, SlabWrites: 2, ReadRequests: 3, WriteRequests: 4, BytesRead: 5, BytesWritten: 6, Seconds: 7}
	b := IOStats{SlabReads: 10, SlabWrites: 20, ReadRequests: 30, WriteRequests: 40, BytesRead: 50, BytesWritten: 60, Seconds: 70}
	a.Add(b)
	want := IOStats{SlabReads: 11, SlabWrites: 22, ReadRequests: 33, WriteRequests: 44, BytesRead: 55, BytesWritten: 66, Seconds: 77}
	if a != want {
		t.Errorf("Add: got %+v want %+v", a, want)
	}
	if a.Requests() != 77 {
		t.Errorf("Requests: got %d want 77", a.Requests())
	}
	if a.Bytes() != 121 {
		t.Errorf("Bytes: got %d want 121", a.Bytes())
	}
}

func TestCommStatsAdd(t *testing.T) {
	a := CommStats{MessagesSent: 1, BytesSent: 2, Collectives: 3, Seconds: 4}
	a.Add(CommStats{MessagesSent: 9, BytesSent: 8, Collectives: 7, Seconds: 6})
	want := CommStats{MessagesSent: 10, BytesSent: 10, Collectives: 10, Seconds: 10}
	if a != want {
		t.Errorf("Add: got %+v want %+v", a, want)
	}
}

func TestStatsAggregation(t *testing.T) {
	s := NewStats(3)
	for i := range s.Procs {
		if s.Procs[i].Proc != i {
			t.Fatalf("proc id %d not set", i)
		}
	}
	s.Procs[0].Seconds = 5
	s.Procs[1].Seconds = 9
	s.Procs[2].Seconds = 7
	if got := s.ElapsedSeconds(); got != 9 {
		t.Errorf("ElapsedSeconds: got %g want 9", got)
	}
	s.Procs[0].IO = IOStats{SlabReads: 4, BytesRead: 100}
	s.Procs[1].IO = IOStats{SlabReads: 6, BytesRead: 50}
	s.Procs[2].IO = IOStats{SlabWrites: 2, BytesWritten: 10}
	tot := s.TotalIO()
	if tot.SlabReads != 10 || tot.BytesRead != 150 || tot.SlabWrites != 2 || tot.BytesWritten != 10 {
		t.Errorf("TotalIO wrong: %+v", tot)
	}
	max := s.MaxIO()
	if max.SlabReads != 6 || max.BytesRead != 100 || max.SlabWrites != 2 {
		t.Errorf("MaxIO wrong: %+v", max)
	}
	s.Procs[1].Comm = CommStats{MessagesSent: 3, BytesSent: 12}
	if s.TotalComm().MessagesSent != 3 {
		t.Errorf("TotalComm wrong: %+v", s.TotalComm())
	}
}

func TestMaxIOIsElementwiseUpperBound(t *testing.T) {
	f := func(reads, writes []int64) bool {
		n := len(reads)
		if len(writes) < n {
			n = len(writes)
		}
		if n == 0 {
			return true
		}
		s := NewStats(n)
		for i := 0; i < n; i++ {
			r, w := reads[i], writes[i]
			if r < 0 {
				r = -r
			}
			if w < 0 {
				w = -w
			}
			s.Procs[i].IO = IOStats{ReadRequests: r, WriteRequests: w}
		}
		m := s.MaxIO()
		for i := 0; i < n; i++ {
			if s.Procs[i].IO.ReadRequests > m.ReadRequests || s.Procs[i].IO.WriteRequests > m.WriteRequests {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		0:                     "0 B",
		512:                   "512 B",
		1024:                  "1.00 KiB",
		1 << 20:               "1.00 MiB",
		3 << 30:               "3.00 GiB",
		1536:                  "1.50 KiB",
		5 << 20:               "5.00 MiB",
		7 << 30:               "7.00 GiB",
		1023:                  "1023 B",
		(1<<20)*3 + (1 << 19): "3.50 MiB",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestStatsString(t *testing.T) {
	s := NewStats(2)
	s.Procs[0].Seconds = 2.5
	s.Procs[0].IO = IOStats{SlabReads: 3, ReadRequests: 4, BytesRead: 2048, Seconds: 1}
	out := s.String()
	for _, want := range []string{"2.50s", "3 slab reads", "4 requests", "2.00 KiB"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() = %q, missing %q", out, want)
		}
	}
}

func TestStatsJSON(t *testing.T) {
	s := NewStats(2)
	s.Procs[1].Seconds = 4.5
	s.Procs[1].IO = IOStats{SlabReads: 3, BytesRead: 1024}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ElapsedSeconds != 4.5 || snap.TotalIO.SlabReads != 3 || len(snap.Procs) != 2 {
		t.Errorf("snapshot wrong: %+v", snap)
	}
}
