// Package trace collects the execution statistics the paper uses to
// analyze out-of-core programs: the number of I/O requests per processor,
// the volume of data moved per processor, and the simulated time broken
// down into compute, communication and I/O.
package trace

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"reflect"
	"strings"
)

// HistBuckets is the number of power-of-two size classes tracked by
// SizeHistogram. Bucket i counts requests of at most 2^i bytes, so the
// last bucket (2^30 = 1 GiB) comfortably covers any single request the
// simulated machine can issue.
const HistBuckets = 31

// SizeHistogram classifies I/O requests by size into power-of-two byte
// buckets. Totals alone cannot show aggregation wins — replacing 1024
// 4-byte requests with one 4 KiB request leaves the volume unchanged —
// but the histogram makes the shift from many small to few large
// requests directly visible.
type SizeHistogram struct {
	Counts [HistBuckets]int64
}

// histBucket returns the bucket index for a request of the given size:
// the smallest i with bytes <= 2^i.
func histBucket(bytes int64) int {
	if bytes <= 1 {
		return 0
	}
	b := bits.Len64(uint64(bytes - 1))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one request of the given size in bytes.
func (h *SizeHistogram) Observe(bytes int64) {
	h.Counts[histBucket(bytes)]++
}

// Add accumulates other into h.
func (h *SizeHistogram) Add(other SizeHistogram) {
	for i := range h.Counts {
		h.Counts[i] += other.Counts[i]
	}
}

// MaxOf raises each bucket of h to the larger of the two counts.
func (h *SizeHistogram) MaxOf(other SizeHistogram) {
	for i := range h.Counts {
		if other.Counts[i] > h.Counts[i] {
			h.Counts[i] = other.Counts[i]
		}
	}
}

// Total returns the number of requests recorded.
func (h SizeHistogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// histLabel renders the upper bound of bucket i compactly ("512B",
// "4KiB", "2MiB", "1GiB").
func histLabel(i int) string {
	size := int64(1) << i
	switch {
	case size >= 1<<30:
		return fmt.Sprintf("%dGiB", size>>30)
	case size >= 1<<20:
		return fmt.Sprintf("%dMiB", size>>20)
	case size >= 1<<10:
		return fmt.Sprintf("%dKiB", size>>10)
	default:
		return fmt.Sprintf("%dB", size)
	}
}

// String renders the non-empty buckets as "<=4KiB:12 <=1MiB:3", or "-"
// when nothing was recorded.
func (h SizeHistogram) String() string {
	var b strings.Builder
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "<=%s:%d", histLabel(i), c)
	}
	if b.Len() == 0 {
		return "-"
	}
	return b.String()
}

// IOStats counts disk activity for one processor.
type IOStats struct {
	// SlabReads and SlabWrites count logical slab transfers — the
	// "number of I/O requests" metric of Section 4 (T_fetch).
	SlabReads  int64
	SlabWrites int64

	// ReadRequests and WriteRequests count physical requests issued to
	// the disk: one per discontiguous file region touched, so a strided
	// slab costs more requests than a contiguous one.
	ReadRequests  int64
	WriteRequests int64

	// BytesRead and BytesWritten count data volume (T_data, scaled by
	// element size).
	BytesRead    int64
	BytesWritten int64

	// Seconds is simulated time spent in the I/O subsystem.
	Seconds float64

	// Retries counts transient faults that were retried by the resilient
	// I/O layer; RetrySeconds is the simulated backoff charged for them.
	Retries      int64
	RetrySeconds float64

	// Corruptions counts checksum mismatches detected on reads (each is
	// retried; a mismatch that survives the retry budget also counts as a
	// give-up).
	Corruptions int64

	// GiveUps counts operations that exhausted the retry budget and
	// failed permanently.
	GiveUps int64

	// Parity counters: the read-modify-write traffic the RAID-5-style
	// parity layer adds to each data write (old-data read plus parity
	// block reads and writes). They are kept separate from the
	// Read/WriteRequests and byte totals above so the unprotected
	// accounting stays comparable to the paper's closed forms.
	ParityReads        int64
	ParityWrites       int64
	ParityBytesRead    int64
	ParityBytesWritten int64

	// Reconstruction counters: degraded-mode recovery of a file whose
	// disk was lost, rebuilt block-by-block from the surviving disks.
	Reconstructions     int64 // files reconstructed
	ReconstructedBlocks int64 // parity stripe units recovered
	ReconstructedBytes  int64 // bytes of file content recovered

	// ParityRebuilds counts parity blocks recomputed from data (a lost
	// parity disk being brought back to full redundancy).
	ParityRebuilds int64

	// ReadSizes and WriteSizes classify every physical request by its
	// size, so the effect of request aggregation (sieving, collective
	// two-phase I/O) shows up beyond the request totals.
	ReadSizes  SizeHistogram
	WriteSizes SizeHistogram
}

// Add accumulates other into s, field by field. Aggregation is driven by
// the struct shape (see combineFields), so a newly added counter can
// never be silently dropped from the fold.
func (s *IOStats) Add(other IOStats) {
	combineFields(reflect.ValueOf(s).Elem(), reflect.ValueOf(&other).Elem(), sumInt, sumFloat, (*SizeHistogram).Add)
}

// Requests returns the total physical request count.
func (s IOStats) Requests() int64 { return s.ReadRequests + s.WriteRequests }

// Bytes returns the total data volume moved.
func (s IOStats) Bytes() int64 { return s.BytesRead + s.BytesWritten }

// CommStats counts interprocessor communication for one processor.
type CommStats struct {
	MessagesSent int64
	BytesSent    int64
	Collectives  int64
	Seconds      float64

	// ShuffleMessages and ShuffleBytes count the subset of traffic
	// exchanged through AllToAll — the in-memory shuffle phase of
	// collective two-phase I/O — so its volume can be weighed against
	// the I/O requests it saves.
	ShuffleMessages int64
	ShuffleBytes    int64

	// RecoveryMessages and RecoveryBytes count the gather traffic of
	// parity reconstruction: surviving blocks shipped to the recovering
	// processor when a lost file is rebuilt. Their simulated time is
	// charged with the reconstruction I/O, not into Seconds here.
	RecoveryMessages int64
	RecoveryBytes    int64

	// Fail-stop fault tolerance counters (see internal/mp failure
	// detection). Detections counts peers this rank declared dead;
	// DetectSeconds is the simulated heartbeat-timeout stall charged for
	// them (kept out of Seconds so the comm time of a run stays
	// comparable to the failure-free closed forms). Agreements counts
	// PREPARE/COMMIT rounds this rank concluded while aborting; Respawns
	// counts times this rank's goroutine was respawned during recovery.
	Detections    int64
	DetectSeconds float64
	Agreements    int64
	Respawns      int64
}

// Add accumulates other into s, field by field (see combineFields).
func (s *CommStats) Add(other CommStats) {
	combineFields(reflect.ValueOf(s).Elem(), reflect.ValueOf(&other).Elem(), sumInt, sumFloat, (*SizeHistogram).Add)
}

// ProcStats aggregates all activity of one processor.
type ProcStats struct {
	Proc           int
	IO             IOStats
	Comm           CommStats
	Flops          int64
	ComputeSeconds float64
	// Seconds is the processor's simulated clock when it finished, i.e.
	// elapsed wall time including waits at collectives.
	Seconds float64
}

// Stats holds per-processor statistics for a whole run.
type Stats struct {
	Procs []ProcStats
}

// NewStats returns a Stats sized for p processors.
func NewStats(p int) *Stats {
	s := &Stats{Procs: make([]ProcStats, p)}
	for i := range s.Procs {
		s.Procs[i].Proc = i
	}
	return s
}

// ElapsedSeconds returns the simulated job time: the maximum finishing
// time across processors.
func (s *Stats) ElapsedSeconds() float64 {
	max := 0.0
	for _, p := range s.Procs {
		if p.Seconds > max {
			max = p.Seconds
		}
	}
	return max
}

// TotalIO returns the sum of I/O statistics across processors.
func (s *Stats) TotalIO() IOStats {
	var t IOStats
	for _, p := range s.Procs {
		t.Add(p.IO)
	}
	return t
}

// TotalComm returns the sum of communication statistics across processors.
func (s *Stats) TotalComm() CommStats {
	var t CommStats
	for _, p := range s.Procs {
		t.Add(p.Comm)
	}
	return t
}

// MaxIO returns, for each I/O metric, the maximum per-processor value.
// The paper's per-processor metrics (requests per processor, data per
// processor) correspond to this view on a load-balanced program.
func (s *Stats) MaxIO() IOStats {
	var m IOStats
	mv := reflect.ValueOf(&m).Elem()
	for i := range s.Procs {
		combineFields(mv, reflect.ValueOf(&s.Procs[i].IO).Elem(), maxInt, maxFloat, (*SizeHistogram).MaxOf)
	}
	return m
}

func sumInt(a, b int64) int64 { return a + b }
func maxInt(a, b int64) int64 {
	if b > a {
		return b
	}
	return a
}
func sumFloat(a, b float64) float64 { return a + b }
func maxFloat(a, b float64) float64 {
	if b > a {
		return b
	}
	return a
}

// combineFields folds src into dst field by field: int64 fields through
// ints, float64 fields through floats, SizeHistogram fields through
// hists. Both values must be addressable views of the same statistics
// struct type. Any other field kind panics, which — together with the
// per-field probe in the aggregation test — guarantees a new counter
// cannot be added without being picked up by Add, MaxIO and TotalIO.
func combineFields(dst, src reflect.Value, ints func(a, b int64) int64, floats func(a, b float64) float64, hists func(h *SizeHistogram, o SizeHistogram)) {
	for i := 0; i < dst.NumField(); i++ {
		d, s := dst.Field(i), src.Field(i)
		switch d.Kind() {
		case reflect.Int64:
			d.SetInt(ints(d.Int(), s.Int()))
		case reflect.Float64:
			d.SetFloat(floats(d.Float(), s.Float()))
		case reflect.Struct:
			h, ok := d.Addr().Interface().(*SizeHistogram)
			if !ok {
				panic(fmt.Sprintf("trace: cannot aggregate %s field %s",
					dst.Type().Name(), dst.Type().Field(i).Name))
			}
			hists(h, s.Interface().(SizeHistogram))
		default:
			panic(fmt.Sprintf("trace: cannot aggregate %s field %s of kind %s",
				dst.Type().Name(), dst.Type().Field(i).Name, d.Kind()))
		}
	}
}

// String renders a compact human-readable summary.
func (s *Stats) String() string {
	var b strings.Builder
	io := s.TotalIO()
	comm := s.TotalComm()
	fmt.Fprintf(&b, "elapsed %.2fs | io: %d slab reads, %d slab writes, %d requests, %s moved, %.2fs | comm: %d msgs, %s, %.2fs",
		s.ElapsedSeconds(),
		io.SlabReads, io.SlabWrites, io.Requests(), FormatBytes(io.Bytes()), io.Seconds,
		comm.MessagesSent, FormatBytes(comm.BytesSent), comm.Seconds)
	return b.String()
}

// FormatBytes renders a byte count with a binary unit suffix.
func FormatBytes(n int64) string {
	const (
		kib = 1 << 10
		mib = 1 << 20
		gib = 1 << 30
	)
	switch {
	case n >= gib:
		return fmt.Sprintf("%.2f GiB", float64(n)/gib)
	case n >= mib:
		return fmt.Sprintf("%.2f MiB", float64(n)/mib)
	case n >= kib:
		return fmt.Sprintf("%.2f KiB", float64(n)/kib)
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Snapshot is the JSON-friendly form of a run's statistics.
type Snapshot struct {
	ElapsedSeconds float64     `json:"elapsed_seconds"`
	Procs          []ProcStats `json:"procs"`
	TotalIO        IOStats     `json:"total_io"`
	TotalComm      CommStats   `json:"total_comm"`
}

// Snapshot bundles the stats for serialization.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		ElapsedSeconds: s.ElapsedSeconds(),
		Procs:          append([]ProcStats(nil), s.Procs...),
		TotalIO:        s.TotalIO(),
		TotalComm:      s.TotalComm(),
	}
}

// MarshalJSON serializes the aggregate view.
func (s *Stats) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.Snapshot())
}
