package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// Sink consumes closed spans incrementally, as they are recorded,
// instead of waiting for the run to finish and the whole buffer to be
// exported. A sink is attached with Tracer.SetSink and fed from a
// single pump goroutine, so implementations never see concurrent Emit
// calls. Emit must not block on the emitting ranks' behalf — the
// tracer's bounded hand-off queue absorbs bursts and drops (with exact
// accounting in Tracer.Dropped) when the sink cannot keep up, so a slow
// consumer can never stall the simulated clock.
type Sink interface {
	// Emit consumes one closed span of the given rank. Errors are kept
	// internal (sticky) and surfaced by Flush or Close.
	Emit(rank int, s Span)
	// Flush forces any buffered output down to the destination.
	Flush() error
	// Close flushes, finalizes the output (trailers, array close) and
	// releases the destination. No Emit follows a Close.
	Close() error
}

// DropReporter is implemented by sinks that record the tracer's final
// drop count in their output — the NDJSON trailer line, the Chrome
// trace's dropped_spans metadata event. Tracer.CloseSink calls it once,
// after the pump has drained and before Flush/Close.
type DropReporter interface {
	ReportDropped(n int64)
}

// sinkState is the bounded hand-off between the emitting rank
// goroutines and the single pump goroutine feeding the Sink. It is
// shared by reference so a recovery loop that rebuilds its tracer per
// attempt (exec.RunResilient) can carry one live stream across all
// attempts (see Tracer.AdoptSink).
type sinkState struct {
	sink Sink
	q    chan Span
	done chan struct{} // closed by the pump once the queue is drained
	fin  chan struct{} // closed by CloseSink once err is final
	// block makes offer wait for queue space instead of dropping — a
	// lossless mode for consumers like a local NDJSON file, where the
	// stream must reconcile and stalling wall-clock time is acceptable.
	// The simulated clock is unaffected either way.
	block bool
	// dropped counts spans the hand-off queue rejected because the sink
	// was too slow; folded into Tracer.Dropped.
	dropped atomic.Int64
	closed  atomic.Bool
	err     error
}

// offer enqueues s for the pump. In the default lossy mode a full queue
// drops the span (counted, never blocking the emitting rank); in
// blocking mode it waits for the pump to catch up.
func (sk *sinkState) offer(s Span) {
	if sk.block {
		sk.q <- s
		return
	}
	select {
	case sk.q <- s:
	default:
		sk.dropped.Add(1)
	}
}

// pump is the consumer goroutine: it serializes all sink access.
func (sk *sinkState) pump() {
	for s := range sk.q {
		sk.sink.Emit(s.Rank, s)
	}
	close(sk.done)
}

// ---------------------------------------------------------------------------
// NDJSON span encoding (one JSON object per line)

// spanJSON is the NDJSON wire form of a Span. Numeric fields round-trip
// exactly: encoding/json renders float64 with the shortest
// representation that parses back to the same bits, and int64 payloads
// are decoded without a float detour.
type spanJSON struct {
	Rank     int     `json:"rank"`
	Kind     string  `json:"kind"`
	Label    string  `json:"label,omitempty"`
	Start    float64 `json:"start_s"`
	Dur      float64 `json:"dur_s,omitempty"`
	Deferred bool    `json:"deferred,omitempty"`
	Peer     int     `json:"peer,omitempty"`
	Flow     string  `json:"flow,omitempty"`
	N        int64   `json:"n,omitempty"`
	M        int64   `json:"m,omitempty"`
	Bytes    int64   `json:"bytes,omitempty"`
	Bytes2   int64   `json:"bytes2,omitempty"`
}

// StreamTrailer is the final NDJSON line of a streamed trace: the span
// count the producer emitted and how many spans were dropped on the way
// (nonzero drops void any exactness claim about the stream).
type StreamTrailer struct {
	Trailer bool  `json:"ndjson_trailer"`
	Spans   int64 `json:"spans"`
	Dropped int64 `json:"dropped"`
}

// MarshalSpan renders one span as its NDJSON line (no trailing newline).
func MarshalSpan(s Span) ([]byte, error) {
	js := spanJSON{
		Rank: s.Rank, Kind: s.Kind.String(), Label: s.Label,
		Start: s.Start, Dur: s.Dur, Deferred: s.Deferred, Peer: s.Peer,
		N: s.N, M: s.M, Bytes: s.Bytes, Bytes2: s.Bytes2,
	}
	if s.Flow != 0 {
		js.Flow = fmt.Sprintf("%x", s.Flow)
	}
	return json.Marshal(js)
}

// UnmarshalSpanLine parses one NDJSON line back into a span. Trailer
// lines return a non-nil *StreamTrailer instead of a span.
func UnmarshalSpanLine(line []byte) (Span, *StreamTrailer, error) {
	if bytes.Contains(line, []byte(`"ndjson_trailer"`)) {
		var tr StreamTrailer
		if err := json.Unmarshal(line, &tr); err != nil {
			return Span{}, nil, fmt.Errorf("trace: bad trailer line: %w", err)
		}
		if tr.Trailer {
			return Span{}, &tr, nil
		}
	}
	var js spanJSON
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&js); err != nil {
		return Span{}, nil, fmt.Errorf("trace: bad span line: %w", err)
	}
	kind, ok := KindFromString(js.Kind)
	if !ok {
		return Span{}, nil, fmt.Errorf("trace: unknown span kind %q", js.Kind)
	}
	s := Span{
		Rank: js.Rank, Kind: kind, Label: js.Label,
		Start: js.Start, Dur: js.Dur, Deferred: js.Deferred, Peer: js.Peer,
		N: js.N, M: js.M, Bytes: js.Bytes, Bytes2: js.Bytes2,
	}
	if js.Flow != "" {
		if _, err := fmt.Sscanf(js.Flow, "%x", &s.Flow); err != nil {
			return Span{}, nil, fmt.Errorf("trace: bad flow id %q", js.Flow)
		}
	}
	return s, nil, nil
}

// NDJSONSink writes spans as newline-delimited JSON, one span per line,
// as they close — the incremental counterpart of the buffered Chrome
// export. Close appends a StreamTrailer line carrying the span and drop
// counts. All methods are called from the tracer's pump goroutine; the
// sink is not safe for concurrent use.
type NDJSONSink struct {
	w       *bufio.Writer
	c       io.Closer // non-nil when the destination should be closed too
	spans   int64
	dropped int64
	err     error
}

// NewNDJSONSink wraps w in a buffered NDJSON span writer. When w is
// also an io.Closer, Close closes it after the trailer.
func NewNDJSONSink(w io.Writer) *NDJSONSink {
	s := &NDJSONSink{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit writes one span line. Errors are sticky and surface on Flush or
// Close.
func (s *NDJSONSink) Emit(rank int, sp Span) {
	if s.err != nil {
		return
	}
	sp.Rank = rank
	line, err := MarshalSpan(sp)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(line); err != nil {
		s.err = err
		return
	}
	if err := s.w.WriteByte('\n'); err != nil {
		s.err = err
		return
	}
	s.spans++
}

// ReportDropped records the producer-side drop count for the trailer.
func (s *NDJSONSink) ReportDropped(n int64) { s.dropped = n }

// Spans returns how many spans have been written so far.
func (s *NDJSONSink) Spans() int64 { return s.spans }

// Flush pushes buffered lines to the destination.
func (s *NDJSONSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// Close writes the trailer line, flushes, and closes the destination
// when it is closable.
func (s *NDJSONSink) Close() error {
	if s.err == nil {
		if data, err := json.Marshal(StreamTrailer{Trailer: true, Spans: s.spans, Dropped: s.dropped}); err != nil {
			s.err = err
		} else if _, err := s.w.Write(append(data, '\n')); err != nil {
			s.err = err
		} else {
			s.err = s.w.Flush()
		}
	}
	if s.c != nil {
		if cerr := s.c.Close(); s.err == nil {
			s.err = cerr
		}
	}
	return s.err
}

// ParseNDJSON restores the spans of an NDJSON stream, stably grouped by
// rank (matching ParseChromeTrace), together with the rank count and
// the trailer's drop count (zero when the stream has no trailer — a
// stream cut off mid-run).
func ParseNDJSON(r io.Reader) (spans []Span, procs int, dropped int64, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	sawTrailer := false
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		if sawTrailer {
			return nil, 0, 0, fmt.Errorf("trace: line %d: content after the trailer", line)
		}
		s, tr, perr := UnmarshalSpanLine(text)
		if perr != nil {
			return nil, 0, 0, fmt.Errorf("trace: line %d: %w", line, perr)
		}
		if tr != nil {
			sawTrailer = true
			dropped = tr.Dropped
			if tr.Spans != int64(len(spans)) {
				return nil, 0, 0, fmt.Errorf("trace: trailer says %d spans but the stream carries %d", tr.Spans, len(spans))
			}
			continue
		}
		if s.Rank+1 > procs {
			procs = s.Rank + 1
		}
		spans = append(spans, s)
	}
	if serr := sc.Err(); serr != nil {
		return nil, 0, 0, serr
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Rank < spans[j].Rank })
	return spans, procs, dropped, nil
}

// ---------------------------------------------------------------------------
// Streaming Chrome trace-event writer

// ChromeSink writes the Chrome trace-event JSON object incrementally:
// the header and per-rank metadata at creation, one event per span as
// it arrives (plus flow events for linked send/wait pairs), and the
// closing of the traceEvents array on Close. The output is exactly the
// document the buffered exporter produced, modulo event order — spans
// arrive in live emission order rather than rank by rank, which
// ParseChromeTrace normalizes. ExportChromeTrace is itself implemented
// by replaying the buffer through this sink.
type ChromeSink struct {
	w       *bufio.Writer
	c       io.Closer
	n       int // events written
	spans   int64
	dropped int64
	err     error
}

// NewChromeSink starts a streaming Chrome trace for procs ranks on w.
// When w is also an io.Closer, Close closes it after the trailer.
func NewChromeSink(w io.Writer, procs int) *ChromeSink {
	s := &ChromeSink{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	s.writeString(`{"traceEvents":[`)
	for r := 0; r < procs; r++ {
		s.writeEvent(jsonEvent{Name: "process_name", Ph: "M", PID: r, Args: map[string]any{"name": fmt.Sprintf("rank %d", r)}})
		s.writeEvent(jsonEvent{Name: "thread_name", Ph: "M", PID: r, TID: tidTimeline, Args: map[string]any{"name": "timeline"}})
		s.writeEvent(jsonEvent{Name: "thread_name", Ph: "M", PID: r, TID: tidDeferred, Args: map[string]any{"name": "disk (overlapped)"}})
	}
	return s
}

func (s *ChromeSink) writeString(str string) {
	if s.err != nil {
		return
	}
	_, s.err = s.w.WriteString(str)
}

func (s *ChromeSink) writeEvent(ev jsonEvent) {
	if s.err != nil {
		return
	}
	data, err := json.Marshal(ev)
	if err != nil {
		s.err = err
		return
	}
	if s.n > 0 {
		if s.err = s.w.WriteByte(','); s.err != nil {
			return
		}
	}
	if _, s.err = s.w.Write(data); s.err != nil {
		return
	}
	s.n++
}

// Emit writes one span's trace event (and its flow event when the span
// is a linked send or wait).
func (s *ChromeSink) Emit(rank int, sp Span) {
	sp.Rank = rank
	s.writeEvent(spanEvent(sp))
	s.spans++
	if sp.Flow == 0 {
		return
	}
	id := fmt.Sprintf("%x", sp.Flow)
	switch sp.Kind {
	case KindSend:
		s.writeEvent(jsonEvent{
			Name: "shuffle", Cat: "flow", Ph: "s", ID: id,
			TS: sp.Start * 1e6, PID: sp.Rank, TID: tidTimeline,
		})
	case KindWait:
		s.writeEvent(jsonEvent{
			Name: "shuffle", Cat: "flow", Ph: "f", BP: "e", ID: id,
			TS: sp.End() * 1e6, PID: sp.Rank, TID: tidTimeline,
		})
	}
}

// ReportDropped records the producer-side drop count for the trailing
// dropped_spans metadata event.
func (s *ChromeSink) ReportDropped(n int64) { s.dropped = n }

// Flush pushes buffered output down. The document is not yet valid
// JSON until Close terminates the array.
func (s *ChromeSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// Close writes the dropped_spans metadata trailer, terminates the
// traceEvents array, flushes, and closes a closable destination.
func (s *ChromeSink) Close() error {
	s.writeEvent(jsonEvent{Name: "dropped_spans", Ph: "M", PID: 0,
		Args: map[string]any{"name": "dropped_spans", "count": s.dropped, "spans": s.spans}})
	s.writeString("]}\n")
	if s.err == nil {
		s.err = s.w.Flush()
	}
	if s.c != nil {
		if cerr := s.c.Close(); s.err == nil {
			s.err = cerr
		}
	}
	return s.err
}
