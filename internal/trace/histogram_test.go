package trace

import (
	"strings"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	var h SizeHistogram
	h.Observe(0) // clamps into the first bucket
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	h.Observe(4)
	h.Observe(1 << 40)    // beyond the last bucket: clamps
	if h.Counts[0] != 2 { // 0 and 1
		t.Errorf("bucket 0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bucket 1 = %d", h.Counts[1])
	}
	if h.Counts[2] != 2 { // 3 and 4
		t.Errorf("bucket 2 = %d", h.Counts[2])
	}
	if h.Counts[HistBuckets-1] != 1 {
		t.Errorf("overflow bucket = %d", h.Counts[HistBuckets-1])
	}
	if h.Total() != 6 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := map[int64]int{
		0:          0,
		1:          0,
		2:          1,
		3:          2,
		4:          2, // exact power of two lands in its own bucket
		1024:       10,
		1025:       11,
		1 << 29:    29,
		1<<29 + 1:  30,
		1 << 30:    30, // last bucket: exactly 1 GiB
		1<<30 + 1:  30, // and everything beyond clamps into it
		1 << 40:    30,
		(1 << 62):  30,
		maxInt64(): 30,
	}
	for bytes, want := range cases {
		if got := histBucket(bytes); got != want {
			t.Errorf("histBucket(%d) = %d, want %d", bytes, got, want)
		}
	}
}

func maxInt64() int64 { return 1<<63 - 1 }

func TestHistLabelRendersEveryUnit(t *testing.T) {
	cases := map[int]string{
		0:  "1B",
		9:  "512B",
		10: "1KiB",
		20: "1MiB",
		29: "512MiB",
		30: "1GiB",
	}
	for bucket, want := range cases {
		if got := histLabel(bucket); got != want {
			t.Errorf("histLabel(%d) = %q, want %q", bucket, got, want)
		}
	}
}

func TestHistogramStringGiB(t *testing.T) {
	var h SizeHistogram
	h.Observe(1 << 30)
	h.Observe(1 << 40) // clamps into the same final bucket
	if got := h.String(); got != "<=1GiB:2" {
		t.Errorf("GiB bucket renders %q, want \"<=1GiB:2\"", got)
	}
}

func TestHistogramAddAndMax(t *testing.T) {
	var a, b SizeHistogram
	a.Observe(512)
	a.Observe(512)
	b.Observe(512)
	b.Observe(4096)
	sum := a
	sum.Add(b)
	if sum.Total() != 4 {
		t.Errorf("sum total = %d", sum.Total())
	}
	m := a
	m.MaxOf(b)
	if m.Total() != 3 { // max(2,1) in the 512 bucket + max(0,1) at 4096
		t.Errorf("max total = %d", m.Total())
	}
}

func TestHistogramString(t *testing.T) {
	var h SizeHistogram
	if h.String() != "-" {
		t.Errorf("empty histogram renders %q", h.String())
	}
	h.Observe(300)
	h.Observe(5 << 20)
	s := h.String()
	if !strings.Contains(s, "<=512B:1") || !strings.Contains(s, "<=8MiB:1") {
		t.Errorf("rendered %q", s)
	}
}

func TestIOStatsFoldsHistograms(t *testing.T) {
	var a, b IOStats
	a.ReadSizes.Observe(100)
	b.ReadSizes.Observe(100)
	b.WriteSizes.Observe(200)
	a.Add(b)
	if a.ReadSizes.Total() != 2 || a.WriteSizes.Total() != 1 {
		t.Errorf("folded totals: reads %d writes %d", a.ReadSizes.Total(), a.WriteSizes.Total())
	}
}

func TestCommStatsFoldsShuffle(t *testing.T) {
	a := CommStats{ShuffleMessages: 2, ShuffleBytes: 100}
	a.Add(CommStats{ShuffleMessages: 3, ShuffleBytes: 50})
	if a.ShuffleMessages != 5 || a.ShuffleBytes != 150 {
		t.Errorf("folded shuffle: %+v", a)
	}
}
