package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The exporter writes the Chrome trace-event JSON object format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// loadable in Perfetto / chrome://tracing. Each rank is a process
// (pid = rank) with two threads: tid 0 carries the synchronous
// timeline, tid 1 the overlapped (deferred) transfers. Matching
// AllToAll send/wait pairs are linked with flow events.
//
// Display timestamps are microseconds of simulated time; because that
// scaling is lossy for float64, every event also carries the exact
// start_s/dur_s in its args, which is what ParseChromeTrace restores —
// so a trace survives export and import bit-for-bit and still
// reconciles with the counters.

const (
	tidTimeline = 0
	tidDeferred = 1
)

type jsonEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	BP   string         `json:"bp,omitempty"`
	ID   string         `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type jsonTrace struct {
	TraceEvents []jsonEvent `json:"traceEvents"`
}

func spanEvent(s Span) jsonEvent {
	name := s.Kind.String()
	if s.Label != "" {
		name += " " + s.Label
	}
	tid := tidTimeline
	if s.Deferred {
		tid = tidDeferred
	}
	ev := jsonEvent{
		Name: name,
		Cat:  s.Kind.String(),
		TS:   s.Start * 1e6,
		PID:  s.Rank,
		TID:  tid,
		Args: map[string]any{
			"label":    s.Label,
			"start_s":  s.Start,
			"dur_s":    s.Dur,
			"deferred": s.Deferred,
			"peer":     s.Peer,
			"flow":     fmt.Sprintf("%x", s.Flow),
			"n":        s.N,
			"m":        s.M,
			"bytes":    s.Bytes,
			"bytes2":   s.Bytes2,
		},
	}
	if s.Dur > 0 {
		ev.Ph = "X"
		dur := s.Dur * 1e6
		ev.Dur = &dur
	} else {
		ev.Ph = "i"
		ev.S = "t"
	}
	return ev
}

// ExportChromeTrace writes the whole trace as one JSON object by
// replaying the buffered spans through a streaming ChromeSink — the
// batch export and the live stream share one writer, so they cannot
// drift apart. Spans are emitted rank by rank in emission order, so an
// imported trace preserves the ordered float sums the reconciliation
// depends on. The tracer's drop count is recorded in the dropped_spans
// metadata event (ParseChromeTraceInfo surfaces it).
func (t *Tracer) ExportChromeTrace(w io.Writer) error {
	cs := NewChromeSink(w, t.Procs())
	// Do not adopt w's Closer here: the batch exporter writes into a
	// caller-owned destination.
	cs.c = nil
	for r := 0; r < t.Procs(); r++ {
		for _, s := range t.RankSpans(r) {
			cs.Emit(s.Rank, s)
		}
	}
	cs.ReportDropped(t.Dropped())
	return cs.Close()
}

// ParseChromeTrace restores the spans of an exported trace, per rank in
// emission order (metadata and flow events are skipped; span fields
// come from the exact args payload). It returns the spans and the rank
// count.
func ParseChromeTrace(data []byte) ([]Span, int, error) {
	spans, procs, _, err := ParseChromeTraceInfo(data)
	return spans, procs, err
}

// ParseChromeTraceInfo is ParseChromeTrace plus the trace's recorded
// drop count, read from the dropped_spans metadata event the exporter
// and ChromeSink write (zero when absent — e.g. a foreign trace).
func ParseChromeTraceInfo(data []byte) (spans []Span, procs int, dropped int64, err error) {
	var in jsonTrace
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, 0, 0, fmt.Errorf("trace: parse: %w", err)
	}
	for i, ev := range in.TraceEvents {
		if ev.Ph == "M" && ev.Name == "dropped_spans" {
			count, cerr := argFloat(ev.Args, "count")
			if cerr != nil {
				return nil, 0, 0, fmt.Errorf("trace: event %d: %w", i, cerr)
			}
			dropped = int64(count)
			continue
		}
		if ev.PID+1 > procs {
			procs = ev.PID + 1
		}
		if ev.Ph != "X" && ev.Ph != "i" {
			continue
		}
		if ev.Cat == "flow" {
			continue
		}
		kind, ok := KindFromString(ev.Cat)
		if !ok {
			return nil, 0, 0, fmt.Errorf("trace: event %d: unknown span category %q", i, ev.Cat)
		}
		s := Span{Rank: ev.PID, Kind: kind}
		var err error
		if s.Label, err = argString(ev.Args, "label"); err != nil {
			return nil, 0, 0, fmt.Errorf("trace: event %d: %w", i, err)
		}
		if s.Start, err = argFloat(ev.Args, "start_s"); err != nil {
			return nil, 0, 0, fmt.Errorf("trace: event %d: %w", i, err)
		}
		if s.Dur, err = argFloat(ev.Args, "dur_s"); err != nil {
			return nil, 0, 0, fmt.Errorf("trace: event %d: %w", i, err)
		}
		s.Deferred = ev.TID == tidDeferred
		peer, err := argFloat(ev.Args, "peer")
		if err != nil {
			return nil, 0, 0, fmt.Errorf("trace: event %d: %w", i, err)
		}
		s.Peer = int(peer)
		flow, err := argString(ev.Args, "flow")
		if err != nil {
			return nil, 0, 0, fmt.Errorf("trace: event %d: %w", i, err)
		}
		if _, err := fmt.Sscanf(flow, "%x", &s.Flow); err != nil {
			return nil, 0, 0, fmt.Errorf("trace: event %d: bad flow id %q", i, flow)
		}
		for name, dst := range map[string]*int64{"n": &s.N, "m": &s.M, "bytes": &s.Bytes, "bytes2": &s.Bytes2} {
			v, err := argFloat(ev.Args, name)
			if err != nil {
				return nil, 0, 0, fmt.Errorf("trace: event %d: %w", i, err)
			}
			*dst = int64(v)
		}
		spans = append(spans, s)
	}
	// The exporter writes ranks in order; a foreign but valid trace may
	// interleave them, so restore the per-rank grouping stably.
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Rank < spans[j].Rank })
	return spans, procs, dropped, nil
}

func argString(args map[string]any, key string) (string, error) {
	v, ok := args[key]
	if !ok {
		return "", fmt.Errorf("missing arg %q", key)
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("arg %q is %T, want string", key, v)
	}
	return s, nil
}

func argFloat(args map[string]any, key string) (float64, error) {
	v, ok := args[key]
	if !ok {
		return 0, fmt.Errorf("missing arg %q", key)
	}
	f, ok := v.(float64)
	if !ok {
		return 0, fmt.Errorf("arg %q is %T, want number", key, v)
	}
	return f, nil
}

// ValidateChromeTrace structurally checks an exported trace against the
// trace-event format: a traceEvents array whose events carry a known
// phase, a name, non-negative timestamps and durations, and whose flow
// events pair up start/finish by id.
func ValidateChromeTrace(data []byte) error {
	var raw struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("trace: invalid JSON: %w", err)
	}
	if raw.TraceEvents == nil {
		return fmt.Errorf("trace: missing traceEvents array")
	}
	flowStarts := map[string]int{}
	flowEnds := map[string]int{}
	for i, ev := range raw.TraceEvents {
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		if name == "" {
			return fmt.Errorf("trace: event %d: missing name", i)
		}
		if _, ok := ev["pid"].(float64); !ok {
			return fmt.Errorf("trace: event %d (%s): missing pid", i, name)
		}
		switch ph {
		case "M":
			// Metadata events carry no timestamp.
		case "X":
			dur, ok := ev["dur"].(float64)
			if !ok || dur < 0 {
				return fmt.Errorf("trace: event %d (%s): complete event needs dur >= 0", i, name)
			}
			fallthrough
		case "i", "s", "f":
			ts, ok := ev["ts"].(float64)
			if !ok || ts < 0 {
				return fmt.Errorf("trace: event %d (%s): needs ts >= 0", i, name)
			}
			if _, ok := ev["tid"].(float64); !ok {
				return fmt.Errorf("trace: event %d (%s): missing tid", i, name)
			}
			if ph == "s" || ph == "f" {
				id, _ := ev["id"].(string)
				if id == "" {
					return fmt.Errorf("trace: event %d (%s): flow event needs an id", i, name)
				}
				if ph == "s" {
					flowStarts[id]++
				} else {
					flowEnds[id]++
				}
			}
		default:
			return fmt.Errorf("trace: event %d (%s): unknown phase %q", i, name, ph)
		}
	}
	for id, n := range flowStarts {
		if flowEnds[id] != n {
			return fmt.Errorf("trace: flow %s has %d starts but %d finishes", id, n, flowEnds[id])
		}
	}
	for id, n := range flowEnds {
		if flowStarts[id] != n {
			return fmt.Errorf("trace: flow %s has %d finishes but %d starts", id, n, flowStarts[id])
		}
	}
	return nil
}
