package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// sampleTracer builds a tracer exercising every span field: durations,
// instants, deferred transfers, peers, flow ids, payload counters and a
// cross-rank emission.
func sampleTracer() *Tracer {
	tr := NewTracer(2)
	r0, r1 := tr.Rank(0), tr.Rank(1)
	r0.Emit(Span{Kind: KindCompute, Start: 0, Dur: 0.5, N: 1000})
	r0.Emit(Span{Kind: KindSlabRead, Label: "a", Start: 0.5, Dur: 0.25, N: 3, Bytes: 4096})
	r0.Emit(Span{Kind: KindReadReq, Label: "a", Start: 0.5, Bytes: 4096})
	r0.Emit(Span{Kind: KindSend, Start: 0.75, Dur: 0.125, Peer: 1, Flow: 0xdeadbeef, Bytes: 64})
	r0.Emit(Span{Kind: KindSlabWrite, Label: "c", Start: 1.0, Dur: 0.0625, Deferred: true, N: 1, Bytes: 512})
	r0.Emit(Span{Kind: KindParityRMW, Label: "c", Start: 1.0, N: 3, M: 2, Bytes: 768, Bytes2: 256})
	r1.Emit(Span{Kind: KindWait, Start: 0, Dur: 0.875, Peer: 0, Flow: 0xdeadbeef})
	r1.Emit(Span{Kind: KindRetry, Label: "b", Start: 0.9, Dur: 0.001953125})
	r1.Emit(Span{Kind: KindCollective, Label: "sum", Start: 0.9})
	r0.Cross(1, Span{Kind: KindRecoveryComm, Start: 1.0, N: 7, Bytes: 3584})
	return tr
}

func TestChromeTraceRoundTripExact(t *testing.T) {
	tr := sampleTracer()
	var buf bytes.Buffer
	if err := tr.ExportChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("exported trace does not validate: %v", err)
	}
	got, procs, err := ParseChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if procs != 2 {
		t.Fatalf("procs = %d, want 2", procs)
	}
	want := tr.Spans()
	if len(got) != len(want) {
		t.Fatalf("round trip kept %d of %d spans", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("span %d: round trip changed\n%+v to\n%+v", i, want[i], got[i])
		}
	}
}

func TestChromeTraceFlowEventsPair(t *testing.T) {
	tr := sampleTracer()
	var buf bytes.Buffer
	if err := tr.ExportChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	starts, finishes := 0, 0
	var id any
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "s":
			starts++
			id = ev["id"]
		case "f":
			finishes++
			if ev["id"] != id {
				t.Errorf("flow finish id %v != start id %v", ev["id"], id)
			}
			if ev["bp"] != "e" {
				t.Errorf("flow finish must bind to the enclosing slice (bp=e), got %v", ev["bp"])
			}
		}
	}
	if starts != 1 || finishes != 1 {
		t.Errorf("flow events: %d starts, %d finishes, want 1 and 1", starts, finishes)
	}
}

func TestChromeTraceMetadataTracks(t *testing.T) {
	tr := sampleTracer()
	var buf bytes.Buffer
	if err := tr.ExportChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" {
			args := ev["args"].(map[string]any)
			names[ev["name"].(string)+":"+args["name"].(string)] = true
		}
	}
	for _, want := range []string{
		"process_name:rank 0", "process_name:rank 1",
		"thread_name:timeline", "thread_name:disk (overlapped)",
	} {
		if !names[want] {
			t.Errorf("missing metadata event %q (have %v)", want, names)
		}
	}
}

func TestValidateChromeTraceRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":        "{",
		"no traceEvents":  `{"foo": 1}`,
		"event sans name": `{"traceEvents": [{"ph": "i", "pid": 0, "ts": 0}]}`,
		"bad phase":       `{"traceEvents": [{"ph": "Q", "name": "x", "pid": 0, "ts": 0}]}`,
		"X without dur":   `{"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "ts": 0}]}`,
		"unpaired flow":   `{"traceEvents": [{"ph": "s", "name": "f", "pid": 0, "ts": 0, "id": "1"}]}`,
	}
	for label, doc := range cases {
		if err := ValidateChromeTrace([]byte(doc)); err == nil {
			t.Errorf("%s: validated but should not", label)
		}
	}
}
