package trace

import (
	"fmt"
	"sort"
)

// RankReplay is the statistics reconstructed from one rank's spans. If
// the instrumentation is sound, it matches the rank's accumulated
// counters exactly — counts, bytes and (because float64 addition is
// replayed in emission order) seconds to the digit.
type RankReplay struct {
	// IO holds one reconstructed IOStats per statistics sink label
	// (array name, "(parity)", ...).
	IO             map[string]*IOStats
	Comm           CommStats
	Flops          int64
	ComputeSeconds float64
}

// ReplayRank folds one rank's spans, in emission order, back into
// statistics. Each Kind maps to exactly the counter bumps performed at
// its emission site:
//
//   - IOStats.Seconds is the ordered sum of slab-read/slab-write,
//     open-recover and parity-sync durations (the three places the
//     runtime charges I/O seconds at top level);
//   - RetrySeconds is the ordered sum of retry backoffs;
//   - CommStats.Seconds is the ordered sum of send and wait durations;
//   - request counts, byte totals and the size histograms come from the
//     read-req/write-req instants, parity payloads from parity-rmw.
func ReplayRank(spans []Span) *RankReplay {
	r := &RankReplay{IO: map[string]*IOStats{}}
	sink := func(label string) *IOStats {
		io := r.IO[label]
		if io == nil {
			io = &IOStats{}
			r.IO[label] = io
		}
		return io
	}
	for _, s := range spans {
		switch s.Kind {
		case KindSlabRead:
			io := sink(s.Label)
			io.SlabReads++
			io.Seconds += s.Dur
		case KindSlabWrite:
			io := sink(s.Label)
			io.SlabWrites++
			io.Seconds += s.Dur
		case KindOpenRecover:
			sink(s.Label).Seconds += s.Dur
		case KindParitySync:
			sink(s.Label).Seconds += s.Dur
		case KindReadReq:
			io := sink(s.Label)
			io.ReadRequests++
			io.BytesRead += s.Bytes
			io.ReadSizes.Observe(s.Bytes)
		case KindWriteReq:
			io := sink(s.Label)
			io.WriteRequests++
			io.BytesWritten += s.Bytes
			io.WriteSizes.Observe(s.Bytes)
		case KindRetry:
			io := sink(s.Label)
			io.Retries++
			io.RetrySeconds += s.Dur
		case KindGiveUp:
			sink(s.Label).GiveUps++
		case KindCorruption:
			sink(s.Label).Corruptions++
		case KindParityRMW:
			io := sink(s.Label)
			io.ParityReads += s.N
			io.ParityWrites += s.M
			io.ParityBytesRead += s.Bytes
			io.ParityBytesWritten += s.Bytes2
		case KindParityRebuild:
			sink(s.Label).ParityRebuilds += s.N
		case KindReconstruct:
			io := sink(s.Label)
			io.Reconstructions++
			io.ReconstructedBlocks += s.N
			io.ReconstructedBytes += s.Bytes
		case KindRecoveryComm:
			r.Comm.RecoveryMessages += s.N
			r.Comm.RecoveryBytes += s.Bytes
		case KindSend:
			r.Comm.MessagesSent++
			r.Comm.BytesSent += s.Bytes
			r.Comm.Seconds += s.Dur
		case KindWait:
			r.Comm.Seconds += s.Dur
		case KindCollective:
			r.Comm.Collectives++
		case KindShuffle:
			r.Comm.ShuffleMessages++
			r.Comm.ShuffleBytes += s.Bytes
		case KindCompute:
			r.Flops += s.N
			r.ComputeSeconds += s.Dur
		case KindDetect:
			r.Comm.Detections++
			r.Comm.DetectSeconds += s.Dur
		case KindAgree:
			r.Comm.Agreements++
		case KindRespawn:
			r.Comm.Respawns++
		}
	}
	return r
}

// TotalIO folds the per-sink statistics in sorted label order — the
// same order the executor folds per-array sinks into the processor
// total, so the float sums agree exactly.
func (r *RankReplay) TotalIO() IOStats {
	labels := make([]string, 0, len(r.IO))
	for l := range r.IO {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var t IOStats
	for _, l := range labels {
		t.Add(*r.IO[l])
	}
	return t
}

// Reconcile verifies that the spans reproduce the run's statistics
// exactly. spans must keep each rank's emission order (Tracer.Spans and
// the export/import round trip both do). perArray, when non-nil, gives
// the expected per-sink statistics per rank and is checked sink by
// sink; otherwise only per-rank totals are compared. The first
// discrepancy is returned as an error naming rank, sink and field view.
func Reconcile(spans []Span, stats *Stats, perArray []map[string]*IOStats) error {
	byRank := make([][]Span, len(stats.Procs))
	for _, s := range spans {
		if s.Rank < 0 || s.Rank >= len(byRank) {
			return fmt.Errorf("trace: span on rank %d outside the run's %d processors", s.Rank, len(byRank))
		}
		byRank[s.Rank] = append(byRank[s.Rank], s)
	}
	for rank := range stats.Procs {
		ps := &stats.Procs[rank]
		rep := ReplayRank(byRank[rank])
		if perArray != nil {
			want := perArray[rank]
			labels := map[string]bool{}
			for l := range want {
				labels[l] = true
			}
			for l := range rep.IO {
				labels[l] = true
			}
			for l := range labels {
				var w, g IOStats
				if st := want[l]; st != nil {
					w = *st
				}
				if st := rep.IO[l]; st != nil {
					g = *st
				}
				if w != g {
					return fmt.Errorf("trace: rank %d sink %q: spans replay to\n%+v\nbut counters say\n%+v", rank, l, g, w)
				}
			}
		}
		if got := rep.TotalIO(); got != ps.IO {
			return fmt.Errorf("trace: rank %d I/O totals: spans replay to\n%+v\nbut counters say\n%+v", rank, got, ps.IO)
		}
		if rep.Comm != ps.Comm {
			return fmt.Errorf("trace: rank %d comm: spans replay to\n%+v\nbut counters say\n%+v", rank, rep.Comm, ps.Comm)
		}
		if rep.Flops != ps.Flops {
			return fmt.Errorf("trace: rank %d flops: spans replay to %d but counters say %d", rank, rep.Flops, ps.Flops)
		}
		if rep.ComputeSeconds != ps.ComputeSeconds {
			return fmt.Errorf("trace: rank %d compute seconds: spans replay to %v but counters say %v", rank, rep.ComputeSeconds, ps.ComputeSeconds)
		}
	}
	return nil
}
