package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind classifies a recorded span. Every kind corresponds to exactly one
// accounting site in the runtime, which is what makes span/counter
// reconciliation possible: replaying a rank's spans in emission order
// must reproduce its IOStats/CommStats to the digit (see ReplayRank).
type Kind uint8

const (
	// KindCompute is charged arithmetic (N = flops).
	KindCompute Kind = iota
	// KindSend is a blocking message injection (Peer = destination,
	// Bytes = message size).
	KindSend
	// KindWait is the receiver-side stall of a Recv: the clock advancing
	// to the message's injection time (Peer = source). Zero duration
	// means the message was already there.
	KindWait
	// KindIOWait is the stall on a previously issued overlapped transfer
	// (prefetch or write-behind) whose simulated completion had not been
	// reached yet.
	KindIOWait
	// KindSlabRead is one logical slab fetch (N = physical requests,
	// Bytes = model bytes; Dur includes retry backoff and inline
	// recovery). Deferred marks transfers issued by an overlap pipeline,
	// whose cost lands on the clock later as KindIOWait.
	KindSlabRead
	// KindSlabWrite is one logical slab store, symmetric to KindSlabRead.
	KindSlabWrite
	// KindReadReq is an instant marking one physical read request
	// (Bytes = model bytes) — the events the request-size histograms are
	// built from.
	KindReadReq
	// KindWriteReq is the write counterpart of KindReadReq.
	KindWriteReq
	// KindRetry is one retried transient fault; Dur is the simulated
	// backoff (zero for unclocked metadata retries).
	KindRetry
	// KindGiveUp is an instant marking an exhausted retry budget.
	KindGiveUp
	// KindCorruption is an instant marking a detected checksum mismatch.
	KindCorruption
	// KindFault is an instant marking a non-transient fault surfacing
	// from the disk layer (lost disk, injected permanent error).
	KindFault
	// KindParityRMW is an instant carrying one protected write's parity
	// maintenance accounting: N parity reads, M parity writes, Bytes
	// read and Bytes2 written on the parity side.
	KindParityRMW
	// KindParityRebuild is an instant marking one parity file recomputed
	// wholesale (N = parity blocks rebuilt).
	KindParityRebuild
	// KindReconstruct is one lost file rebuilt from the surviving disks
	// (N = blocks, Bytes = model bytes recovered). Deferred: its seconds
	// are folded into the interrupted operation's span.
	KindReconstruct
	// KindRecoveryComm is an instant carrying reconstruction gather
	// traffic (N = messages, Bytes = model bytes) attributed to the rank
	// whose communication statistics it was charged to.
	KindRecoveryComm
	// KindOpenRecover is reconstruction time charged at OpenLAF, which
	// bumps IOStats.Seconds without advancing the clock (Deferred).
	KindOpenRecover
	// KindParitySync is one rank's share of the collective parity
	// rebuild (exec.paritySync); its Dur is charged to the clock and to
	// the "(parity)" statistics sink.
	KindParitySync
	// KindCollective is an instant marking entry into a collective
	// (Label = operation name); one per CommStats.Collectives increment.
	KindCollective
	// KindShuffle is an instant marking one AllToAll part about to be
	// sent (Peer = destination, Bytes = part size).
	KindShuffle
	// KindCheckpoint brackets one checkpoint commit including its
	// barrier (N = epoch). It overlays the spans recorded inside it.
	KindCheckpoint
	// KindNode brackets one top-level plan node in exec (Label = node).
	// It overlays the spans recorded inside it.
	KindNode
	// KindPhase brackets one collective-I/O stage (Label =
	// "collio:read" / "collio:shuffle" / "collio:write"). Overlay.
	KindPhase
	// KindDetect is the failure-detection stall of an aborting rank: the
	// simulated heartbeat timeout it waits before declaring a peer dead
	// (Peer = the dead rank, Dur = the wait). Its seconds land in
	// CommStats.DetectSeconds, not Seconds.
	KindDetect
	// KindAgree is an instant marking one completed PREPARE/COMMIT
	// agreement round on an aborting rank (N = agreed dead-rank count).
	KindAgree
	// KindRespawn is an instant marking a previously dead rank's
	// goroutine being respawned at the start of a recovery attempt.
	KindRespawn

	numKinds
)

var kindNames = [numKinds]string{
	"compute", "send", "wait", "io-wait", "slab-read", "slab-write",
	"read-req", "write-req", "retry", "give-up", "corruption", "fault",
	"parity-rmw", "parity-rebuild", "reconstruct", "recovery-comm",
	"open-recover", "parity-sync", "collective", "shuffle",
	"checkpoint", "node", "phase", "detect", "agree", "respawn",
}

// String returns the kind's stable name (used as the Chrome trace-event
// category, so it round-trips through export and import).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KindFromString inverts String.
func KindFromString(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// Span is one typed interval or instant of simulated time on one rank.
// The payload fields N, M, Bytes and Bytes2 are kind-specific (see the
// Kind constants); unused fields are zero.
type Span struct {
	Rank  int
	Kind  Kind
	Label string
	// Start is the simulated time the span begins; Dur its length in
	// simulated seconds (zero for instants).
	Start float64
	Dur   float64
	// Deferred marks spans whose cost is not on the issuing clock's
	// synchronous timeline: overlapped transfers realized later through
	// KindIOWait, and recovery charged without a clock advance.
	Deferred bool
	// Peer is the partner rank of send/wait/shuffle spans.
	Peer int
	// Flow links the matching send and wait of an AllToAll exchange in
	// the exported timeline (nonzero on both ends, zero elsewhere).
	Flow uint64
	// Kind-specific payloads.
	N, M   int64
	Bytes  int64
	Bytes2 int64
}

// End returns Start + Dur.
func (s Span) End() float64 { return s.Start + s.Dur }

// rankBuf is one rank's span storage, appended to only from that rank's
// goroutine. With a limit it degrades to a ring keeping the newest spans.
type rankBuf struct {
	limit   int
	spans   []Span
	head    int // ring start when full
	dropped int64
}

func (b *rankBuf) add(s Span) {
	if b.limit > 0 && len(b.spans) == b.limit {
		b.spans[b.head] = s
		b.head = (b.head + 1) % b.limit
		b.dropped++
		return
	}
	b.spans = append(b.spans, s)
}

// unrolled returns the spans in emission order.
func (b *rankBuf) unrolled() []Span {
	out := make([]Span, 0, len(b.spans))
	out = append(out, b.spans[b.head:]...)
	out = append(out, b.spans[:b.head]...)
	return out
}

// Tracer records typed spans for every rank of a run against the
// simulated clock. Per-rank storage is lock-free (each rank's goroutine
// owns its buffer); the rare cross-rank emissions (parity rebuild
// traffic attributed to another rank) go through a mutex-protected side
// buffer. A nil *Tracer is fully usable: Rank returns a nil *RankTracer
// whose Emit is a no-op, so instrumented code needs no conditionals
// beyond a nil check on its own fast path.
type Tracer struct {
	ranks []*rankBuf

	mu    sync.Mutex
	cross []Span

	// sk, when non-nil, streams every emitted span to an attached Sink
	// through a bounded hand-off queue (see SetSink). It is shared by
	// reference across the per-attempt tracers of a recovery loop
	// (AdoptSink), so one live stream spans all attempts.
	sk *sinkState
}

// NewTracer returns an unbounded tracer for procs ranks.
func NewTracer(procs int) *Tracer { return NewTracerLimit(procs, 0) }

// NewTracerLimit bounds each rank's storage to maxPerRank spans, kept as
// a ring of the newest ones (Dropped reports the overwritten count).
// maxPerRank <= 0 means unbounded.
func NewTracerLimit(procs, maxPerRank int) *Tracer {
	t := &Tracer{ranks: make([]*rankBuf, procs)}
	for i := range t.ranks {
		t.ranks[i] = &rankBuf{limit: maxPerRank}
	}
	return t
}

// Procs returns the rank count.
func (t *Tracer) Procs() int {
	if t == nil {
		return 0
	}
	return len(t.ranks)
}

// Rank returns the per-rank emission handle. Safe on a nil Tracer or an
// out-of-range rank (returns nil, which is itself safe to Emit on).
// Call SetSink before handing out Rank handles: they capture the sink
// hand-off at creation so the emission fast path stays branch-cheap.
func (t *Tracer) Rank(r int) *RankTracer {
	if t == nil || r < 0 || r >= len(t.ranks) {
		return nil
	}
	return &RankTracer{t: t, buf: t.ranks[r], rank: r, sk: t.sk}
}

// SetSink attaches a streaming consumer: every span recorded after this
// call is also handed to sink, incrementally, from a single pump
// goroutine. queue bounds the hand-off buffer between the emitting
// ranks and the pump (default 4096 spans); when it is full the span is
// dropped from the stream — never blocking the emitting rank or the
// simulated clock — and counted in Dropped and SinkDropped. Call before
// the run starts (before Rank handles are created) and pair with
// CloseSink after the run's goroutines have finished. A nil Tracer or
// nil sink is a no-op.
func (t *Tracer) SetSink(sink Sink, queue int) {
	t.setSink(sink, queue, false)
}

// SetSinkBlocking attaches a lossless streaming consumer: when the
// hand-off queue fills, emitting ranks wait for the pump instead of
// dropping. That can stall wall-clock progress behind a slow sink — the
// simulated clock is never affected — so it fits local destinations the
// producer owns (ooc-run -trace-stream writing its own file), where a
// stream that reconciles exactly is worth the wait. Servers streaming
// to remote subscribers should keep the non-blocking SetSink.
func (t *Tracer) SetSinkBlocking(sink Sink, queue int) {
	t.setSink(sink, queue, true)
}

func (t *Tracer) setSink(sink Sink, queue int, block bool) {
	if t == nil || sink == nil {
		return
	}
	if queue <= 0 {
		queue = 4096
	}
	t.sk = &sinkState{
		sink:  sink,
		q:     make(chan Span, queue),
		done:  make(chan struct{}),
		fin:   make(chan struct{}),
		block: block,
	}
	go t.sk.pump()
}

// AdoptSink moves src's live stream onto t: spans emitted through t now
// feed the same sink, queue and pump. exec.RunResilient uses it to keep
// one stream alive across the fresh tracer it builds per recovery
// attempt. CloseSink on any adopting tracer closes the shared stream.
func (t *Tracer) AdoptSink(src *Tracer) {
	if t == nil || src == nil {
		return
	}
	t.sk = src.sk
}

// CloseSink detaches the streaming sink: it stops accepting spans,
// drains the hand-off queue, reports the final drop count to a
// DropReporter sink, flushes and closes the sink. Safe to call on a
// tracer without a sink (no-op, nil error) and idempotent across
// tracers sharing one stream. Call only after the run's goroutines have
// finished emitting.
func (t *Tracer) CloseSink() error {
	if t == nil || t.sk == nil {
		return nil
	}
	sk := t.sk
	if sk.closed.Swap(true) {
		<-sk.fin
		return sk.err
	}
	close(sk.q)
	<-sk.done
	if dr, ok := sk.sink.(DropReporter); ok {
		dr.ReportDropped(t.Dropped())
	}
	ferr := sk.sink.Flush()
	cerr := sk.sink.Close()
	if ferr != nil {
		sk.err = ferr
	} else {
		sk.err = cerr
	}
	close(sk.fin)
	return sk.err
}

// Dropped returns how many spans were lost across all ranks: buffer
// ring overwrites plus stream hand-off drops (SinkDropped). A nonzero
// count voids the exactness of both the buffered export and the stream.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	var n int64
	for _, b := range t.ranks {
		n += b.dropped
	}
	return n + t.SinkDropped()
}

// SinkDropped returns how many spans the streaming hand-off rejected
// because the sink could not keep up (zero without a sink).
func (t *Tracer) SinkDropped() int64 {
	if t == nil || t.sk == nil {
		return 0
	}
	return t.sk.dropped.Load()
}

// RankSpans returns one rank's spans in emission order, with any
// cross-rank emissions attributed to it appended at the end (they carry
// only order-insensitive integer payloads). Call only after the run's
// goroutines have finished.
func (t *Tracer) RankSpans(r int) []Span {
	if t == nil || r < 0 || r >= len(t.ranks) {
		return nil
	}
	out := t.ranks[r].unrolled()
	t.mu.Lock()
	for _, s := range t.cross {
		if s.Rank == r {
			out = append(out, s)
		}
	}
	t.mu.Unlock()
	return out
}

// Spans returns all spans: each rank's in emission order, ranks
// concatenated in order. Call only after the run's goroutines have
// finished.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for r := range t.ranks {
		out = append(out, t.RankSpans(r)...)
	}
	return out
}

// RankTracer emits spans for one rank. All methods must be called from
// that rank's goroutine (Cross may attribute the span to another rank,
// but is still called from the emitting goroutine). A nil receiver is a
// no-op.
type RankTracer struct {
	t    *Tracer
	buf  *rankBuf
	rank int
	sk   *sinkState
}

// Emit records one span on this rank. The span's Rank field is set by
// the tracer. With a streaming sink attached the span is also offered
// to the hand-off queue — a non-blocking send, so a slow sink costs
// drops, never simulated time.
func (rt *RankTracer) Emit(s Span) {
	if rt == nil {
		return
	}
	s.Rank = rt.rank
	rt.buf.add(s)
	if rt.sk != nil {
		rt.sk.offer(s)
	}
}

// Cross records a span attributed to another rank (e.g. recovery
// traffic charged to the rank hosting a rebuilt parity file). It is
// safe under concurrent emission from other goroutines.
func (rt *RankTracer) Cross(rank int, s Span) {
	if rt == nil {
		return
	}
	s.Rank = rank
	rt.t.mu.Lock()
	rt.t.cross = append(rt.t.cross, s)
	rt.t.mu.Unlock()
	if rt.sk != nil {
		rt.sk.offer(s)
	}
}

// ---------------------------------------------------------------------------
// Text rendering

// kindGlyphs maps timeline span kinds to their Gantt glyphs.
var kindGlyphs = map[Kind]rune{
	KindCompute:     'C',
	KindSend:        's',
	KindWait:        'w',
	KindIOWait:      'o',
	KindSlabRead:    'R',
	KindSlabWrite:   'W',
	KindParitySync:  'P',
	KindOpenRecover: 'X',
	KindReconstruct: 'X',
}

// overlayKind reports whether the kind brackets other spans (and so must
// be excluded from time aggregation to avoid double counting).
func overlayKind(k Kind) bool {
	return k == KindNode || k == KindPhase || k == KindCheckpoint
}

// Gantt renders an ASCII timeline: one lane per rank, width columns
// spanning [0, horizon] where horizon is the latest span end. Later
// spans overpaint earlier ones within a cell; idle time shows as '.'.
// Deferred (overlapped) transfers are not painted — their cost appears
// as 'o' stalls where the pipeline waited for them.
func (t *Tracer) Gantt(procs, width int) string {
	spans := t.Spans()
	horizon := 0.0
	for _, s := range spans {
		if !s.Deferred && s.End() > horizon {
			horizon = s.End()
		}
	}
	if horizon <= 0 || width < 10 {
		return "(no spans recorded)\n"
	}
	lanes := make([][]rune, procs)
	for i := range lanes {
		lanes[i] = []rune(strings.Repeat(".", width))
	}
	for _, s := range spans {
		if s.Rank < 0 || s.Rank >= procs || s.Deferred || s.Dur <= 0 {
			continue
		}
		glyph, ok := kindGlyphs[s.Kind]
		if !ok {
			continue
		}
		lo := int(s.Start / horizon * float64(width))
		hi := int(s.End() / horizon * float64(width))
		if hi == lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		for c := lo; c < hi; c++ {
			lanes[s.Rank][c] = glyph
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline over %.2f simulated seconds (C compute, R read, W write, o io-wait, s send, w recv-wait, P parity-sync, X recovery, . idle)\n", horizon)
	for p, lane := range lanes {
		fmt.Fprintf(&b, "p%-3d |%s|\n", p, string(lane))
	}
	return b.String()
}

// Summary aggregates span time per (kind, label) pair, for text reports.
// Overlay kinds are excluded; deferred transfers are flagged.
func (t *Tracer) Summary() string {
	spans := t.Spans()
	totals := map[string]float64{}
	for _, s := range spans {
		if s.Dur <= 0 || overlayKind(s.Kind) {
			continue
		}
		key := s.Kind.String()
		if s.Label != "" {
			key += " " + s.Label
		}
		if s.Deferred {
			key += " (overlapped)"
		}
		totals[key] += s.Dur
	}
	if len(totals) == 0 {
		return "(no spans recorded)\n"
	}
	keys := make([]string, 0, len(totals))
	for k := range totals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-32s %10.2fs\n", k, totals[k])
	}
	return b.String()
}
