package trace

import (
	"strings"
	"testing"
)

func TestSpanLogRecordAndOrder(t *testing.T) {
	l := NewSpanLog()
	l.Record(1, "compute", "", 2, 3)
	l.Record(0, "io-read", "a", 0, 1)
	l.Record(0, "compute", "", 1, 2)
	l.Record(0, "bogus", "", 5, 5)   // zero length: dropped
	l.Record(0, "bogus", "", 3, 2.5) // negative: dropped
	spans := l.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	if spans[0].Proc != 0 || spans[0].Kind != "io-read" || spans[0].Label != "a" {
		t.Errorf("first span wrong: %+v", spans[0])
	}
	if spans[2].Proc != 1 {
		t.Errorf("ordering wrong: %+v", spans)
	}
}

func TestNilSpanLogSafe(t *testing.T) {
	var l *SpanLog
	l.Record(0, "compute", "", 0, 1) // must not panic
	if l.Spans() != nil {
		t.Error("nil log should return nil spans")
	}
}

func TestGantt(t *testing.T) {
	l := NewSpanLog()
	l.Record(0, "io-read", "a", 0, 5)
	l.Record(0, "compute", "", 5, 10)
	l.Record(1, "wait", "", 0, 10)
	out := l.Gantt(2, 20)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("gantt lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "RRRRRRRRRRCCCCCCCCCC") {
		t.Errorf("lane 0 wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], strings.Repeat("w", 20)) {
		t.Errorf("lane 1 wrong: %q", lines[2])
	}
	// Unknown kinds render as '?'; out-of-range procs are ignored.
	l.Record(0, "mystery", "", 0, 10)
	l.Record(9, "compute", "", 0, 10)
	out = l.Gantt(2, 20)
	if !strings.Contains(out, "?") {
		t.Errorf("unknown kind not rendered:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	if out := NewSpanLog().Gantt(2, 40); !strings.Contains(out, "no spans") {
		t.Errorf("empty gantt = %q", out)
	}
	l := NewSpanLog()
	l.Record(0, "compute", "", 0, 1)
	if out := l.Gantt(1, 2); !strings.Contains(out, "no spans") {
		t.Errorf("narrow gantt should refuse: %q", out)
	}
}

func TestSummary(t *testing.T) {
	l := NewSpanLog()
	l.Record(0, "io-read", "a", 0, 2)
	l.Record(1, "io-read", "a", 1, 2)
	l.Record(0, "compute", "", 2, 5)
	out := l.Summary()
	if !strings.Contains(out, "io-read a") || !strings.Contains(out, "3.00s") {
		t.Errorf("summary wrong:\n%s", out)
	}
	if !strings.Contains(NewSpanLog().Summary(), "no spans") {
		t.Error("empty summary wrong")
	}
}
