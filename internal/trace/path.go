package trace

import (
	"fmt"
	"sort"
	"strings"
)

// PathSeg is one stretch of the critical path: Seconds of Phase on Rank.
// Phase "idle" marks untraced gaps (setup, span-free stretches).
type PathSeg struct {
	Rank    int
	Phase   string
	Seconds float64
}

// CriticalPath walks backwards from the moment the last rank finished
// and reports the chain of spans that bounds the elapsed time. From the
// current (rank, time) frontier it steps to the latest timeline span on
// that rank ending at or before the frontier; a receive wait hops to
// the sending rank (the wait ends exactly when the sender's message was
// injected, so the sender's own spans continue the chain there).
// Consecutive stretches of the same rank and phase are merged. The
// returned segments run from the start of the run to the end and sum,
// together with "idle" gaps, to the elapsed time.
func CriticalPath(spans []Span, procs int) ([]PathSeg, float64) {
	perRank := make([][]Span, procs)
	elapsed := 0.0
	for _, s := range spans {
		if s.Rank < 0 || s.Rank >= procs || !timelinePhase(s) || s.Dur <= 0 {
			continue
		}
		perRank[s.Rank] = append(perRank[s.Rank], s)
		if s.End() > elapsed {
			elapsed = s.End()
		}
	}
	for r := range perRank {
		sort.SliceStable(perRank[r], func(i, j int) bool { return perRank[r][i].End() < perRank[r][j].End() })
	}
	rank := 0
	for r := range perRank {
		if n := len(perRank[r]); n > 0 && perRank[r][n-1].End() >= elapsed {
			rank = r
		}
	}

	const eps = 1e-12
	var segs []PathSeg
	add := func(r int, phase string, sec float64) {
		if sec <= 0 {
			return
		}
		if n := len(segs); n > 0 && segs[n-1].Rank == r && segs[n-1].Phase == phase {
			segs[n-1].Seconds += sec
			return
		}
		segs = append(segs, PathSeg{Rank: r, Phase: phase, Seconds: sec})
	}
	t := elapsed
	for steps := 0; t > eps && steps <= len(spans)+procs+1000; steps++ {
		lane := perRank[rank]
		// Latest span on this rank ending at or before the frontier.
		i := sort.Search(len(lane), func(i int) bool { return lane[i].End() > t+eps }) - 1
		if i < 0 {
			add(rank, "idle", t)
			t = 0
			break
		}
		s := lane[i]
		if s.End() < t-eps {
			add(rank, "idle", t-s.End())
			t = s.End()
			continue
		}
		if s.Kind == KindWait && s.Peer >= 0 && s.Peer < procs && s.Peer != rank && s.Dur > eps {
			// The wait ended when the sender injected the message: the
			// chain continues on the sending rank at the same instant.
			rank = s.Peer
			continue
		}
		add(rank, phaseOf(s), s.Dur)
		t = s.Start
	}
	if t > eps {
		add(rank, "idle", t)
	}
	// Walked backwards; present start-to-end.
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	return segs, elapsed
}

// TopBottlenecks aggregates the critical path by (rank, phase) and
// returns the k largest contributions.
func TopBottlenecks(segs []PathSeg, k int) []PathSeg {
	agg := map[[2]any]*PathSeg{}
	for _, s := range segs {
		key := [2]any{s.Rank, s.Phase}
		if a := agg[key]; a != nil {
			a.Seconds += s.Seconds
		} else {
			c := s
			agg[key] = &c
		}
	}
	out := make([]PathSeg, 0, len(agg))
	for _, s := range agg {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Phase < out[j].Phase
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// FormatCriticalPath renders the walk and its top contributors.
func FormatCriticalPath(segs []PathSeg, elapsed float64, topK int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path bounding %.2f simulated seconds:\n", elapsed)
	if len(segs) == 0 {
		b.WriteString("  (no timeline spans recorded)\n")
		return b.String()
	}
	for _, s := range TopBottlenecks(segs, topK) {
		pct := 0.0
		if elapsed > 0 {
			pct = s.Seconds / elapsed * 100
		}
		fmt.Fprintf(&b, "  rank %2d %-22s %10.2fs  %5.1f%%\n", s.Rank, s.Phase, s.Seconds, pct)
	}
	// Render the chain with runs of short segments (under 0.5% of the
	// elapsed time) elided, so deeply interleaved runs stay readable.
	cutoff := elapsed * 0.005
	var chain []string
	skipped, skippedSec := 0, 0.0
	flush := func() {
		if skipped > 0 {
			chain = append(chain, fmt.Sprintf("[%d short, %.2fs]", skipped, skippedSec))
			skipped, skippedSec = 0, 0
		}
	}
	for _, s := range segs {
		if s.Seconds < cutoff {
			skipped++
			skippedSec += s.Seconds
			continue
		}
		flush()
		chain = append(chain, fmt.Sprintf("p%d:%s %.2fs", s.Rank, s.Phase, s.Seconds))
	}
	flush()
	const maxChain = 24
	if len(chain) > maxChain {
		rest := len(chain) - maxChain
		chain = append(chain[:maxChain:maxChain], fmt.Sprintf("... (+%d more)", rest))
	}
	fmt.Fprintf(&b, "  chain: %s\n", strings.Join(chain, " -> "))
	return b.String()
}
