package hpf

import (
	"strings"
	"testing"
)

// FuzzParse checks that the frontend never panics on arbitrary input and
// that any program it accepts round-trips through printing.
func FuzzParse(f *testing.F) {
	f.Add(GaxpySource)
	f.Add(EwiseSource)
	f.Add("")
	f.Add("end\n")
	f.Add("parameter (n=4)\nreal x(n)\nx(1) = n/2\nend\n")
	f.Add("!hpf$ align (*,:) with d :: a\n")
	f.Add("do i=1, 4\nx(i,1) = i\nend do\nend\n")
	f.Add("forall (k=1:4)\nx(1:4,k) = 1\nend forall\n")
	f.Add("!hpf$ memory (64)\n!hpf$ out_of_core :: a\nend\n")
	f.Add("x(1:2:3) = 1")
	f.Add("forall (k=2:7)\nz(1:8,k) = (x(1:8,k-1) + x(1:8,k+1)) / 2\nend forall\nend\n")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		printed := prog.String()
		re, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed program does not reparse: %v\n%s", err, printed)
		}
		if again := re.String(); again != printed {
			t.Fatalf("print/parse not a fixpoint:\n--- first\n%s\n--- second\n%s", printed, again)
		}
		_ = strings.TrimSpace(printed)
	})
}
