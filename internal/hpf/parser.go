package hpf

import (
	"fmt"
	"strconv"
)

// Parse tokenizes and parses a mini-HPF program.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

// accept consumes the next token if it has the given kind.
func (p *parser) accept(k Kind) (Token, bool) {
	if p.peek().Kind == k {
		return p.next(), true
	}
	return Token{}, false
}

// expect consumes a token of the given kind or fails.
func (p *parser) expect(k Kind) (Token, error) {
	t := p.peek()
	if t.Kind != k {
		return t, fmt.Errorf("hpf: %s: expected %v, found %v %q", t.Pos(), k, t.Kind, t.Text)
	}
	return p.next(), nil
}

// expectKeyword consumes an IDENT with the given (lower-case) spelling.
func (p *parser) expectKeyword(kw string) error {
	t, err := p.expect(IDENT)
	if err != nil {
		return err
	}
	if t.Text != kw {
		return fmt.Errorf("hpf: %s: expected %q, found %q", t.Pos(), kw, t.Text)
	}
	return nil
}

// atKeyword reports whether the next token is the given keyword.
func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == IDENT && t.Text == kw
}

func (p *parser) skipNewlines() {
	for p.peek().Kind == NEWLINE {
		p.next()
	}
}

func (p *parser) endOfStatement() error {
	t := p.peek()
	if t.Kind == NEWLINE {
		p.next()
		return nil
	}
	if t.Kind == EOF {
		return nil
	}
	return fmt.Errorf("hpf: %s: unexpected %v %q at end of statement", t.Pos(), t.Kind, t.Text)
}

// ---------------------------------------------------------------------------

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{}
	sawEnd := false
	for {
		p.skipNewlines()
		t := p.peek()
		if t.Kind == EOF {
			break
		}
		switch {
		case t.Kind == DIRECTIVE:
			p.next()
			if err := p.parseDirective(prog); err != nil {
				return nil, err
			}
		case p.atKeyword("parameter"):
			if err := p.parseParameter(prog); err != nil {
				return nil, err
			}
		case p.atKeyword("real"):
			if err := p.parseReal(prog); err != nil {
				return nil, err
			}
		case p.atKeyword("end") && p.lookaheadIsBareEnd():
			p.next()
			if err := p.endOfStatement(); err != nil {
				return nil, err
			}
			sawEnd = true
		default:
			if sawEnd {
				return nil, fmt.Errorf("hpf: %s: statement after end", t.Pos())
			}
			st, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			prog.Body = append(prog.Body, st)
		}
		if sawEnd {
			p.skipNewlines()
			if t := p.peek(); t.Kind != EOF {
				return nil, fmt.Errorf("hpf: %s: trailing input after end", t.Pos())
			}
			break
		}
	}
	return prog, nil
}

// lookaheadIsBareEnd distinguishes the program-terminating "end" from
// "end do" / "end forall".
func (p *parser) lookaheadIsBareEnd() bool {
	return p.toks[p.pos+1].Kind == NEWLINE || p.toks[p.pos+1].Kind == EOF
}

func (p *parser) parseParameter(prog *Program) error {
	if err := p.expectKeyword("parameter"); err != nil {
		return err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return err
	}
	for {
		name, err := p.expect(IDENT)
		if err != nil {
			return err
		}
		if _, err := p.expect(EQUALS); err != nil {
			return err
		}
		num, err := p.expect(NUMBER)
		if err != nil {
			return err
		}
		v, err := strconv.Atoi(num.Text)
		if err != nil {
			return fmt.Errorf("hpf: %s: bad number %q", num.Pos(), num.Text)
		}
		prog.Params = append(prog.Params, Param{Name: name.Text, Value: v})
		if _, ok := p.accept(COMMA); !ok {
			break
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return err
	}
	return p.endOfStatement()
}

func (p *parser) parseReal(prog *Program) error {
	if err := p.expectKeyword("real"); err != nil {
		return err
	}
	for {
		name, err := p.expect(IDENT)
		if err != nil {
			return err
		}
		if _, err := p.expect(LPAREN); err != nil {
			return err
		}
		var dims []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			dims = append(dims, e)
			if _, ok := p.accept(COMMA); !ok {
				break
			}
		}
		if _, err := p.expect(RPAREN); err != nil {
			return err
		}
		prog.Arrays = append(prog.Arrays, ArrayDecl{Name: name.Text, Dims: dims})
		if _, ok := p.accept(COMMA); !ok {
			break
		}
	}
	return p.endOfStatement()
}

func (p *parser) parseDirective(prog *Program) error {
	t, err := p.expect(IDENT)
	if err != nil {
		return err
	}
	switch t.Text {
	case "processors":
		name, err := p.expect(IDENT)
		if err != nil {
			return err
		}
		sizes, err := p.parseExprList()
		if err != nil {
			return err
		}
		prog.Processors = &ProcessorsDir{Name: name.Text, Sizes: sizes}
	case "template":
		name, err := p.expect(IDENT)
		if err != nil {
			return err
		}
		sizes, err := p.parseExprList()
		if err != nil {
			return err
		}
		prog.Template = &TemplateDir{Name: name.Text, Sizes: sizes}
	case "distribute":
		name, err := p.expect(IDENT)
		if err != nil {
			return err
		}
		if _, err := p.expect(LPAREN); err != nil {
			return err
		}
		d := &DistributeDir{Template: name.Text}
		for {
			scheme, err := p.expect(IDENT)
			if err != nil {
				return err
			}
			if scheme.Text != "block" && scheme.Text != "cyclic" {
				return fmt.Errorf("hpf: %s: unknown distribution %q", scheme.Pos(), scheme.Text)
			}
			d.Schemes = append(d.Schemes, scheme.Text)
			if _, ok := p.accept(LPAREN); ok {
				arg, err := p.parseExpr()
				if err != nil {
					return err
				}
				d.Arg = arg
				if _, err := p.expect(RPAREN); err != nil {
					return err
				}
			}
			if _, ok := p.accept(COMMA); !ok {
				break
			}
		}
		if _, err := p.expect(RPAREN); err != nil {
			return err
		}
		if err := p.expectKeyword("on"); err != nil {
			return err
		}
		procs, err := p.expect(IDENT)
		if err != nil {
			return err
		}
		d.Procs = procs.Text
		prog.Distribute = d
	case "align":
		if _, err := p.expect(LPAREN); err != nil {
			return err
		}
		var pattern []AlignAxis
		for {
			switch tk := p.next(); tk.Kind {
			case STAR:
				pattern = append(pattern, AxisCollapsed)
			case COLON:
				pattern = append(pattern, AxisAligned)
			default:
				return fmt.Errorf("hpf: %s: align pattern wants '*' or ':', found %q", tk.Pos(), tk.Text)
			}
			if _, ok := p.accept(COMMA); !ok {
				break
			}
		}
		if _, err := p.expect(RPAREN); err != nil {
			return err
		}
		if err := p.expectKeyword("with"); err != nil {
			return err
		}
		with, err := p.expect(IDENT)
		if err != nil {
			return err
		}
		if _, err := p.expect(DCOLON); err != nil {
			return err
		}
		var arrays []string
		for {
			name, err := p.expect(IDENT)
			if err != nil {
				return err
			}
			arrays = append(arrays, name.Text)
			if _, ok := p.accept(COMMA); !ok {
				break
			}
		}
		prog.Aligns = append(prog.Aligns, AlignDir{Pattern: pattern, With: with.Text, Arrays: arrays})
	case "out_of_core":
		if _, err := p.expect(DCOLON); err != nil {
			return err
		}
		for {
			name, err := p.expect(IDENT)
			if err != nil {
				return err
			}
			prog.OutOfCore = append(prog.OutOfCore, name.Text)
			if _, ok := p.accept(COMMA); !ok {
				break
			}
		}
	case "memory":
		if _, err := p.expect(LPAREN); err != nil {
			return err
		}
		mem, err := p.parseExpr()
		if err != nil {
			return err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return err
		}
		prog.Memory = mem
	default:
		return fmt.Errorf("hpf: %s: unknown directive %q", t.Pos(), t.Text)
	}
	return p.endOfStatement()
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.atKeyword("do"):
		return p.parseDo()
	case p.atKeyword("forall"):
		return p.parseForall()
	default:
		return p.parseAssign()
	}
}

// parseBody parses statements until "end <closer>".
func (p *parser) parseBody(closer string) ([]Stmt, error) {
	var body []Stmt
	for {
		p.skipNewlines()
		t := p.peek()
		if t.Kind == EOF {
			return nil, fmt.Errorf("hpf: %s: missing 'end %s'", t.Pos(), closer)
		}
		if p.atKeyword("end") && !p.lookaheadIsBareEnd() {
			p.next() // end
			if err := p.expectKeyword(closer); err != nil {
				return nil, err
			}
			if err := p.endOfStatement(); err != nil {
				return nil, err
			}
			return body, nil
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		body = append(body, st)
	}
}

func (p *parser) parseDo() (Stmt, error) {
	if err := p.expectKeyword("do"); err != nil {
		return nil, err
	}
	v, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(EQUALS); err != nil {
		return nil, err
	}
	lo, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COMMA); err != nil {
		return nil, err
	}
	hi, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.endOfStatement(); err != nil {
		return nil, err
	}
	body, err := p.parseBody("do")
	if err != nil {
		return nil, err
	}
	return &DoLoop{Var: v.Text, Lo: lo, Hi: hi, Body: body}, nil
}

func (p *parser) parseForall() (Stmt, error) {
	if err := p.expectKeyword("forall"); err != nil {
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	v, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(EQUALS); err != nil {
		return nil, err
	}
	lo, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	hi, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if err := p.endOfStatement(); err != nil {
		return nil, err
	}
	body, err := p.parseBody("forall")
	if err != nil {
		return nil, err
	}
	for _, st := range body {
		if _, ok := st.(*Assign); !ok {
			return nil, fmt.Errorf("hpf: FORALL body must contain only assignments")
		}
	}
	return &Forall{Var: v.Text, Lo: lo, Hi: hi, Body: body}, nil
}

func (p *parser) parseAssign() (Stmt, error) {
	lhsExpr, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	lhs, ok := lhsExpr.(*SectionRef)
	if !ok {
		return nil, fmt.Errorf("hpf: assignment target must be an array reference, got %s", lhsExpr.String())
	}
	if _, err := p.expect(EQUALS); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.endOfStatement(); err != nil {
		return nil, err
	}
	return &Assign{LHS: lhs, RHS: rhs}, nil
}

// ---------------------------------------------------------------------------
// Expressions

func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != PLUS && t.Kind != MINUS {
			return l, nil
		}
		p.next()
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: t.Text[0], L: l, R: r}
	}
}

func (p *parser) parseTerm() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != STAR && t.Kind != SLASH {
			return l, nil
		}
		p.next()
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: t.Text[0], L: l, R: r}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case NUMBER:
		p.next()
		v, err := strconv.Atoi(t.Text)
		if err != nil {
			return nil, fmt.Errorf("hpf: %s: bad number %q", t.Pos(), t.Text)
		}
		return &Num{Value: v}, nil
	case MINUS:
		p.next()
		inner, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &BinOp{Op: '-', L: &Num{Value: 0}, R: inner}, nil
	case LPAREN:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	case IDENT:
		p.next()
		if t.Text == "sum" && p.peek().Kind == LPAREN {
			return p.parseSum()
		}
		if p.peek().Kind != LPAREN {
			return &Ident{Name: t.Text}, nil
		}
		p.next() // '('
		ref := &SectionRef{Array: t.Text}
		for {
			sub, err := p.parseSubscript()
			if err != nil {
				return nil, err
			}
			ref.Subs = append(ref.Subs, sub)
			if _, ok := p.accept(COMMA); !ok {
				break
			}
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return ref, nil
	default:
		return nil, fmt.Errorf("hpf: %s: unexpected %v %q in expression", t.Pos(), t.Kind, t.Text)
	}
}

func (p *parser) parseSum() (Expr, error) {
	// "sum" and '(' already consumed up to '('... the caller consumed
	// "sum" and verified LPAREN; consume it here.
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	argExpr, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	arg, ok := argExpr.(*SectionRef)
	if !ok {
		// A bare identifier names a whole array.
		if id, isIdent := argExpr.(*Ident); isIdent {
			arg = &SectionRef{Array: id.Name}
		} else {
			return nil, fmt.Errorf("hpf: SUM argument must be an array, got %s", argExpr.String())
		}
	}
	if _, err := p.expect(COMMA); err != nil {
		return nil, err
	}
	dim, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	return &SumIntrinsic{Arg: arg, Dim: dim}, nil
}

// parseSubscript parses "expr" or "expr : expr".
func (p *parser) parseSubscript() (Subscript, error) {
	lo, err := p.parseExpr()
	if err != nil {
		return Subscript{}, err
	}
	if _, ok := p.accept(COLON); !ok {
		return Subscript{Index: lo}, nil
	}
	hi, err := p.parseExpr()
	if err != nil {
		return Subscript{}, err
	}
	return Subscript{Lo: lo, Hi: hi}, nil
}

// parseExprList parses "(" expr {"," expr} ")".
func (p *parser) parseExprList() ([]Expr, error) {
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	var out []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if _, ok := p.accept(COMMA); !ok {
			break
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	return out, nil
}
