package hpf_test

import (
	"fmt"

	"github.com/ooc-hpf/passion/internal/hpf"
)

// ExampleParse parses a minimal mini-HPF program and inspects the
// directives and the loop structure.
func ExampleParse() {
	prog, err := hpf.Parse(`parameter (n=8, nprocs=2)
real a(n,n)
!hpf$ processors pr(nprocs)
!hpf$ template d(n)
!hpf$ distribute d(block) on pr
!hpf$ align (*,:) with d :: a
do j=1, n
  FORALL (k=1:n)
    a(1:n,k) = a(1:n,k) + 1
  end FORALL
end do
end
`)
	if err != nil {
		panic(err)
	}
	n, _ := prog.ParamValue("n")
	fmt.Println("n =", n)
	fmt.Println("template:", prog.Template.Name, "distributed", prog.Distribute.Scheme())
	do := prog.Body[0].(*hpf.DoLoop)
	fa := do.Body[0].(*hpf.Forall)
	fmt.Printf("loop %s over FORALL %s\n", do.Var, fa.Var)
	// Output:
	// n = 8
	// template: d distributed block
	// loop j over FORALL k
}

// ExampleEval folds a constant expression using the program's PARAMETER
// environment.
func ExampleEval() {
	prog, _ := hpf.Parse("parameter (n=64, nprocs=4)\nend\n")
	env := hpf.ParamEnv(prog)
	v, err := hpf.Eval(&hpf.BinOp{Op: '/', L: &hpf.Ident{Name: "n"}, R: &hpf.Ident{Name: "nprocs"}}, env)
	if err != nil {
		panic(err)
	}
	fmt.Println("n/nprocs =", v)
	// Output:
	// n/nprocs = 16
}
