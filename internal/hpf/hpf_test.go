package hpf

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("do j=1, n\n")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{IDENT, IDENT, EQUALS, NUMBER, COMMA, IDENT, NEWLINE, EOF}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexDirectiveVsComment(t *testing.T) {
	toks, err := Lex("!hpf$ processors pr(4)\n! a plain comment\nx(1) = 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != DIRECTIVE {
		t.Errorf("first token should be DIRECTIVE, got %v", toks[0].Kind)
	}
	// The comment line contributes nothing but (collapsed) newlines.
	var idents []string
	for _, tk := range toks {
		if tk.Kind == IDENT {
			idents = append(idents, tk.Text)
		}
	}
	if strings.Join(idents, " ") != "processors pr x" {
		t.Errorf("idents = %v", idents)
	}
}

func TestLexCaseInsensitive(t *testing.T) {
	toks, err := Lex("FORALL (K=1:N)\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "forall" || toks[2].Text != "k" {
		t.Errorf("identifiers not lowered: %v", toks)
	}
}

func TestLexDoubleColon(t *testing.T) {
	toks, err := Lex(":: a:b\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != DCOLON || toks[2].Kind != COLON {
		t.Errorf("colon tokens wrong: %v", toks)
	}
}

func TestLexRejectsGarbage(t *testing.T) {
	if _, err := Lex("a = #\n"); err == nil {
		t.Error("expected lex error on '#'")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[2].Line != 2 || toks[2].Col != 3 {
		t.Errorf("positions wrong: %v", toks)
	}
}

func TestParseGaxpyProgram(t *testing.T) {
	prog, err := Parse(GaxpySource)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := prog.ParamValue("n"); !ok || v != 64 {
		t.Errorf("param n = %d, %v", v, ok)
	}
	if v, ok := prog.ParamValue("nprocs"); !ok || v != 4 {
		t.Errorf("param nprocs = %d, %v", v, ok)
	}
	if len(prog.Arrays) != 4 {
		t.Fatalf("arrays = %d, want 4", len(prog.Arrays))
	}
	if a, ok := prog.Array("temp"); !ok || len(a.Dims) != 2 {
		t.Errorf("temp decl missing or wrong arity")
	}
	if prog.Processors == nil || prog.Processors.Name != "pr" {
		t.Fatalf("processors directive missing")
	}
	if prog.Template == nil || prog.Template.Name != "d" {
		t.Fatalf("template directive missing")
	}
	if prog.Distribute == nil || prog.Distribute.Scheme() != "block" || prog.Distribute.Procs != "pr" {
		t.Fatalf("distribute directive wrong: %+v", prog.Distribute)
	}
	if len(prog.Aligns) != 2 {
		t.Fatalf("aligns = %d, want 2", len(prog.Aligns))
	}
	al := prog.Aligns[0]
	if al.Pattern[0] != AxisCollapsed || al.Pattern[1] != AxisAligned {
		t.Errorf("first align pattern wrong: %v", al.Pattern)
	}
	if strings.Join(al.Arrays, ",") != "a,c,temp" {
		t.Errorf("first align arrays: %v", al.Arrays)
	}
	if prog.Aligns[1].Pattern[0] != AxisAligned || prog.Aligns[1].Pattern[1] != AxisCollapsed {
		t.Errorf("second align pattern wrong: %v", prog.Aligns[1].Pattern)
	}

	// Body: one do loop containing a FORALL and an assignment.
	if len(prog.Body) != 1 {
		t.Fatalf("body has %d statements", len(prog.Body))
	}
	do, ok := prog.Body[0].(*DoLoop)
	if !ok {
		t.Fatalf("body[0] is %T", prog.Body[0])
	}
	if do.Var != "j" {
		t.Errorf("do var = %q", do.Var)
	}
	if len(do.Body) != 2 {
		t.Fatalf("do body has %d statements", len(do.Body))
	}
	fa, ok := do.Body[0].(*Forall)
	if !ok {
		t.Fatalf("do body[0] is %T", do.Body[0])
	}
	if fa.Var != "k" || len(fa.Body) != 1 {
		t.Errorf("forall shape wrong: %+v", fa)
	}
	asg := fa.Body[0].(*Assign)
	if asg.LHS.Array != "temp" || !asg.LHS.Subs[0].IsRange() || asg.LHS.Subs[1].IsRange() {
		t.Errorf("forall assignment LHS wrong: %s", asg.LHS.String())
	}
	mul, ok := asg.RHS.(*BinOp)
	if !ok || mul.Op != '*' {
		t.Fatalf("forall RHS should be a product: %s", asg.RHS.String())
	}
	sumAsg, ok := do.Body[1].(*Assign)
	if !ok {
		t.Fatalf("do body[1] is %T", do.Body[1])
	}
	sum, ok := sumAsg.RHS.(*SumIntrinsic)
	if !ok {
		t.Fatalf("RHS should be SUM, got %s", sumAsg.RHS.String())
	}
	if sum.Arg.Array != "temp" {
		t.Errorf("SUM argument = %q", sum.Arg.Array)
	}
	if d, err := Eval(sum.Dim, nil); err != nil || d != 2 {
		t.Errorf("SUM dim = %d, %v", d, err)
	}
}

func TestParseRoundTripsThroughString(t *testing.T) {
	prog, err := Parse(GaxpySource)
	if err != nil {
		t.Fatal(err)
	}
	printed := prog.String()
	reparsed, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse of printed program failed: %v\n%s", err, printed)
	}
	if reparsed.String() != printed {
		t.Errorf("print/parse not a fixpoint:\n--- first\n%s\n--- second\n%s", printed, reparsed.String())
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	prog, err := Parse("real x(4)\nx(1) = 1 + 2*3 - 4/2\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	asg := prog.Body[0].(*Assign)
	v, err := Eval(asg.RHS, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Errorf("1+2*3-4/2 = %d, want 5", v)
	}
}

func TestParseUnaryMinusAndParens(t *testing.T) {
	prog, err := Parse("real x(4)\nx(1) = -(2+3)*2\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	v, err := Eval(prog.Body[0].(*Assign).RHS, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != -10 {
		t.Errorf("-(2+3)*2 = %d, want -10", v)
	}
}

func TestEvalEnvAndErrors(t *testing.T) {
	prog, err := Parse("parameter (n=8)\nreal x(n)\nx(1) = n/2\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	env := ParamEnv(prog)
	if env["n"] != 8 {
		t.Fatalf("env = %v", env)
	}
	v, err := Eval(prog.Body[0].(*Assign).RHS, env)
	if err != nil || v != 4 {
		t.Errorf("n/2 = %d, %v", v, err)
	}
	if _, err := Eval(&Ident{Name: "missing"}, env); err == nil {
		t.Error("undefined name should fail")
	}
	if _, err := Eval(&BinOp{Op: '/', L: &Num{1}, R: &Num{0}}, nil); err == nil {
		t.Error("division by zero should fail")
	}
	if _, err := Eval(&SectionRef{Array: "a"}, nil); err == nil {
		t.Error("array ref is not a constant expression")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"missing end do", "do i=1, 4\nx(i) = 1\n"},
		{"bad directive", "!hpf$ frobnicate a(4)\nend\n"},
		{"bad distribution", "!hpf$ distribute d(diagonal) on pr\nend\n"},
		{"align pattern junk", "!hpf$ align (+,-) with d :: a\nend\n"},
		{"assignment to scalar", "x = 1\nend\n"},
		{"statement after end", "end\nx(1) = 2\n"},
		{"forall with loop inside", "forall (k=1:4)\ndo i=1,2\nx(i)=1\nend do\nend forall\nend\n"},
		{"sum without dim", "real t(4)\nx(1) = sum(t)\nend\n"},
		{"unclosed paren", "real x(4\nend\n"},
		{"garbage at line end", "parameter (n=4) n\nend\n"},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.src); err == nil {
			t.Errorf("%s: expected parse error", tc.name)
		}
	}
}

func TestParseCyclicDistribution(t *testing.T) {
	prog, err := Parse("!hpf$ distribute d(cyclic(4)) on pr\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Distribute.Scheme() != "cyclic" {
		t.Errorf("scheme = %q", prog.Distribute.Scheme())
	}
	if v, err := Eval(prog.Distribute.Arg, nil); err != nil || v != 4 {
		t.Errorf("cyclic arg = %d, %v", v, err)
	}
}

func TestParseMultipleStatementsAndNesting(t *testing.T) {
	src := `parameter (n=4)
real x(n,n), y(n,n)
do i=1, n
  do j=1, n
    x(i,j) = y(i,j) + 1
  end do
end do
end
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	outer := prog.Body[0].(*DoLoop)
	inner := outer.Body[0].(*DoLoop)
	if outer.Var != "i" || inner.Var != "j" {
		t.Errorf("nesting wrong: %s then %s", outer.Var, inner.Var)
	}
}

func TestKindString(t *testing.T) {
	for k := EOF; k <= DIRECTIVE; k++ {
		if k.String() == "" {
			t.Errorf("Kind %d has empty name", k)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestParseOutOfCoreAndMemoryDirectives(t *testing.T) {
	src := `parameter (n=8, m=64)
real a(n,n)
!hpf$ processors pr(2)
!hpf$ template d(n)
!hpf$ distribute d(block) on pr
!hpf$ out_of_core :: a
!hpf$ memory (m*2)
!hpf$ align (*,:) with d :: a
end
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.OutOfCore) != 1 || prog.OutOfCore[0] != "a" {
		t.Errorf("OutOfCore = %v", prog.OutOfCore)
	}
	if prog.Memory == nil {
		t.Fatal("memory directive missing")
	}
	if v, err := Eval(prog.Memory, ParamEnv(prog)); err != nil || v != 128 {
		t.Errorf("memory = %d, %v", v, err)
	}
	// Round-trips through String().
	printed := prog.String()
	re, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, printed)
	}
	if re.String() != printed {
		t.Error("directive printing not a fixpoint")
	}
}

func TestParseOutOfCoreErrors(t *testing.T) {
	if _, err := Parse("!hpf$ out_of_core a\nend\n"); err == nil {
		t.Error("missing :: should fail")
	}
	if _, err := Parse("!hpf$ memory 64\nend\n"); err == nil {
		t.Error("missing parens should fail")
	}
}
