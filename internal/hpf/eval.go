package hpf

import "fmt"

// Eval evaluates a constant integer expression in an environment mapping
// parameter/loop-variable names to values.
func Eval(e Expr, env map[string]int) (int, error) {
	switch n := e.(type) {
	case *Num:
		return n.Value, nil
	case *Ident:
		v, ok := env[n.Name]
		if !ok {
			return 0, fmt.Errorf("hpf: undefined name %q in constant expression", n.Name)
		}
		return v, nil
	case *BinOp:
		l, err := Eval(n.L, env)
		if err != nil {
			return 0, err
		}
		r, err := Eval(n.R, env)
		if err != nil {
			return 0, err
		}
		switch n.Op {
		case '+':
			return l + r, nil
		case '-':
			return l - r, nil
		case '*':
			return l * r, nil
		case '/':
			if r == 0 {
				return 0, fmt.Errorf("hpf: division by zero in constant expression")
			}
			return l / r, nil
		default:
			return 0, fmt.Errorf("hpf: unknown operator %q", n.Op)
		}
	default:
		return 0, fmt.Errorf("hpf: %s is not a constant expression", e.String())
	}
}

// ParamEnv builds the evaluation environment of a program's PARAMETER
// constants.
func ParamEnv(p *Program) map[string]int {
	env := make(map[string]int, len(p.Params))
	for _, pr := range p.Params {
		env[pr.Name] = pr.Value
	}
	return env
}
