package hpf

import (
	"fmt"
	"strings"
)

// Program is a parsed mini-HPF program.
type Program struct {
	// Params holds PARAMETER constants in declaration order.
	Params []Param
	// Arrays holds REAL array declarations.
	Arrays []ArrayDecl
	// Processors, Template, Distribute and Aligns are the HPF mapping
	// directives.
	Processors *ProcessorsDir
	Template   *TemplateDir
	Distribute *DistributeDir
	Aligns     []AlignDir
	// OutOfCore lists arrays annotated "!hpf$ out_of_core :: a, b"; an
	// empty list means every array is treated as out of core.
	OutOfCore []string
	// Memory is the "!hpf$ memory (expr)" node-memory annotation (in
	// array elements), or nil.
	Memory Expr
	// Body is the executable part.
	Body []Stmt
}

// Param is one PARAMETER constant.
type Param struct {
	Name  string
	Value int
}

// ParamValue looks up a PARAMETER by name.
func (p *Program) ParamValue(name string) (int, bool) {
	for _, pr := range p.Params {
		if pr.Name == name {
			return pr.Value, true
		}
	}
	return 0, false
}

// Array looks up an array declaration by name.
func (p *Program) Array(name string) (ArrayDecl, bool) {
	for _, a := range p.Arrays {
		if a.Name == name {
			return a, true
		}
	}
	return ArrayDecl{}, false
}

// ArrayDecl declares a REAL array with the given dimension extents.
type ArrayDecl struct {
	Name string
	Dims []Expr
}

// ProcessorsDir is "!hpf$ processors NAME(extent{,extent})"; more than
// one extent declares a multi-dimensional processor grid.
type ProcessorsDir struct {
	Name  string
	Sizes []Expr
}

// Size returns the first extent (the whole grid for 1-D arrangements).
func (d *ProcessorsDir) Size() Expr { return d.Sizes[0] }

// TemplateDir is "!hpf$ template NAME(extent{,extent})".
type TemplateDir struct {
	Name  string
	Sizes []Expr
}

// Size returns the first extent.
func (d *TemplateDir) Size() Expr { return d.Sizes[0] }

// DistributeDir is "!hpf$ distribute NAME(scheme{,scheme}) on PROCS".
type DistributeDir struct {
	Template string
	Schemes  []string // "block", "cyclic", one per template dimension
	Arg      Expr     // block size for cyclic(k); nil otherwise
	Procs    string
}

// Scheme returns the first dimension's scheme.
func (d *DistributeDir) Scheme() string { return d.Schemes[0] }

// AlignDir is "!hpf$ align (pattern) with TEMPLATE :: names".
// Pattern entries are '*' (collapsed) or ':' (aligned with the template).
type AlignDir struct {
	Pattern []AlignAxis
	With    string
	Arrays  []string
}

// AlignAxis is one axis of an ALIGN pattern.
type AlignAxis int

// Alignment kinds.
const (
	AxisCollapsed AlignAxis = iota // '*'
	AxisAligned                    // ':'
)

// Stmt is an executable statement.
type Stmt interface {
	stmt()
	// Pretty renders the statement with the given indentation.
	Pretty(indent int) string
}

// DoLoop is a sequential "do var = lo, hi ... end do".
type DoLoop struct {
	Var    string
	Lo, Hi Expr
	Body   []Stmt
}

// Forall is "FORALL (var = lo:hi) ... end FORALL".
type Forall struct {
	Var    string
	Lo, Hi Expr
	Body   []Stmt
}

// Assign is an (array-section) assignment statement.
type Assign struct {
	LHS *SectionRef
	RHS Expr
}

func (*DoLoop) stmt() {}
func (*Forall) stmt() {}
func (*Assign) stmt() {}

// Expr is an expression node.
type Expr interface {
	expr()
	String() string
}

// Num is an integer literal.
type Num struct{ Value int }

// Ident is a scalar reference (parameter or loop variable).
type Ident struct{ Name string }

// BinOp is a binary arithmetic expression.
type BinOp struct {
	Op   byte // '+', '-', '*', '/'
	L, R Expr
}

// SectionRef is an array reference with subscripts, e.g. a(1:n, k).
type SectionRef struct {
	Array string
	Subs  []Subscript
}

// SumIntrinsic is SUM(array, dim): reduce the named array along the given
// (1-based) dimension.
type SumIntrinsic struct {
	Arg *SectionRef
	Dim Expr
}

func (*Num) expr()          {}
func (*Ident) expr()        {}
func (*BinOp) expr()        {}
func (*SectionRef) expr()   {}
func (*SumIntrinsic) expr() {}

// Subscript is one dimension of an array reference: a single index or a
// lo:hi range.
type Subscript struct {
	// Index is the single-point subscript; nil for a range.
	Index Expr
	// Lo and Hi bound a range subscript; nil for a single index.
	Lo, Hi Expr
}

// IsRange reports whether the subscript is a lo:hi section.
func (s Subscript) IsRange() bool { return s.Index == nil }

// ---------------------------------------------------------------------------
// Printing

func (n *Num) String() string   { return fmt.Sprintf("%d", n.Value) }
func (n *Ident) String() string { return n.Name }
func (n *BinOp) String() string {
	return fmt.Sprintf("(%s%c%s)", n.L.String(), n.Op, n.R.String())
}
func (n *SectionRef) String() string {
	if len(n.Subs) == 0 {
		return n.Array
	}
	parts := make([]string, len(n.Subs))
	for i, s := range n.Subs {
		if s.IsRange() {
			parts[i] = s.Lo.String() + ":" + s.Hi.String()
		} else {
			parts[i] = s.Index.String()
		}
	}
	return n.Array + "(" + strings.Join(parts, ",") + ")"
}
func (n *SumIntrinsic) String() string {
	return fmt.Sprintf("SUM(%s,%s)", n.Arg.String(), n.Dim.String())
}

func pad(indent int) string { return strings.Repeat("  ", indent) }

// Pretty renders the loop.
func (s *DoLoop) Pretty(indent int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%sdo %s = %s, %s\n", pad(indent), s.Var, s.Lo.String(), s.Hi.String())
	for _, st := range s.Body {
		b.WriteString(st.Pretty(indent + 1))
	}
	fmt.Fprintf(&b, "%send do\n", pad(indent))
	return b.String()
}

// Pretty renders the FORALL.
func (s *Forall) Pretty(indent int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%sFORALL (%s = %s:%s)\n", pad(indent), s.Var, s.Lo.String(), s.Hi.String())
	for _, st := range s.Body {
		b.WriteString(st.Pretty(indent + 1))
	}
	fmt.Fprintf(&b, "%send FORALL\n", pad(indent))
	return b.String()
}

// Pretty renders the assignment.
func (s *Assign) Pretty(indent int) string {
	return fmt.Sprintf("%s%s = %s\n", pad(indent), s.LHS.String(), s.RHS.String())
}

// String renders the whole program in canonical form.
func (p *Program) String() string {
	var b strings.Builder
	if len(p.Params) > 0 {
		parts := make([]string, len(p.Params))
		for i, pr := range p.Params {
			parts[i] = fmt.Sprintf("%s=%d", pr.Name, pr.Value)
		}
		fmt.Fprintf(&b, "parameter (%s)\n", strings.Join(parts, ", "))
	}
	for _, a := range p.Arrays {
		dims := make([]string, len(a.Dims))
		for i, d := range a.Dims {
			dims[i] = d.String()
		}
		fmt.Fprintf(&b, "real %s(%s)\n", a.Name, strings.Join(dims, ","))
	}
	if p.Processors != nil {
		fmt.Fprintf(&b, "!hpf$ processors %s(%s)\n", p.Processors.Name, exprList(p.Processors.Sizes))
	}
	if p.Template != nil {
		fmt.Fprintf(&b, "!hpf$ template %s(%s)\n", p.Template.Name, exprList(p.Template.Sizes))
	}
	if p.Distribute != nil {
		fmt.Fprintf(&b, "!hpf$ distribute %s(%s) on %s\n", p.Distribute.Template,
			strings.Join(p.Distribute.Schemes, ","), p.Distribute.Procs)
	}
	if len(p.OutOfCore) > 0 {
		fmt.Fprintf(&b, "!hpf$ out_of_core :: %s\n", strings.Join(p.OutOfCore, ", "))
	}
	if p.Memory != nil {
		fmt.Fprintf(&b, "!hpf$ memory (%s)\n", p.Memory.String())
	}
	for _, al := range p.Aligns {
		axes := make([]string, len(al.Pattern))
		for i, ax := range al.Pattern {
			if ax == AxisCollapsed {
				axes[i] = "*"
			} else {
				axes[i] = ":"
			}
		}
		fmt.Fprintf(&b, "!hpf$ align (%s) with %s :: %s\n",
			strings.Join(axes, ","), al.With, strings.Join(al.Arrays, ", "))
	}
	for _, st := range p.Body {
		b.WriteString(st.Pretty(0))
	}
	b.WriteString("end\n")
	return b.String()
}

// exprList renders comma-separated expressions.
func exprList(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, ",")
}
