// Package hpf implements the frontend for the mini-HPF dialect used in
// the paper: Fortran-style declarations (PARAMETER, REAL), the HPF
// mapping directives (PROCESSORS, TEMPLATE, DISTRIBUTE, ALIGN), DO loops,
// FORALL constructs, array-section assignments and the SUM intrinsic —
// exactly the subset exercised by the GAXPY program of Figure 3.
//
// The frontend is line-oriented like Fortran: a statement ends at a
// newline. Identifiers and keywords are case-insensitive and are
// normalized to lower case.
package hpf

import "fmt"

// Kind identifies a lexical token class.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	NEWLINE
	IDENT
	NUMBER
	LPAREN
	RPAREN
	COMMA
	COLON
	DCOLON // ::
	EQUALS
	PLUS
	MINUS
	STAR
	SLASH
	DIRECTIVE // the !hpf$ sentinel
)

// String names the kind for error messages.
func (k Kind) String() string {
	switch k {
	case EOF:
		return "end of file"
	case NEWLINE:
		return "end of line"
	case IDENT:
		return "identifier"
	case NUMBER:
		return "number"
	case LPAREN:
		return "'('"
	case RPAREN:
		return "')'"
	case COMMA:
		return "','"
	case COLON:
		return "':'"
	case DCOLON:
		return "'::'"
	case EQUALS:
		return "'='"
	case PLUS:
		return "'+'"
	case MINUS:
		return "'-'"
	case STAR:
		return "'*'"
	case SLASH:
		return "'/'"
	case DIRECTIVE:
		return "'!hpf$'"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Token is one lexical token with its source position (1-based).
type Token struct {
	Kind Kind
	Text string
	Line int
	Col  int
}

// Pos renders the token's position for diagnostics.
func (t Token) Pos() string { return fmt.Sprintf("%d:%d", t.Line, t.Col) }
