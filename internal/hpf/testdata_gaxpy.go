package hpf

// GaxpySource is the paper's Figure 3 program — GAXPY matrix
// multiplication in (mini-)HPF — parameterized by n and the processor
// count through its PARAMETER statement. It is shared by tests, the
// compiler and the examples.
const GaxpySource = `parameter (n=64, nprocs=4)
real a(n,n), b(n,n), c(n,n), temp(n,n)
!hpf$ processors pr(nprocs)
!hpf$ template d(n)
!hpf$ distribute d(block) on pr
!hpf$ align (*,:) with d :: a, c, temp
!hpf$ align (:,*) with d :: b
do j=1, n
  FORALL (k=1:n)
    temp(1:n,k) = b(k,j)*a(1:n,k)
  end FORALL
  c(1:n,j) = SUM(temp,2)
end do
end
`

// TransposeSource is an out-of-core transpose program: the compiler
// recognizes it as a collective redistribution with swapped global
// indices and selects the destination write strategy (direct, sieved,
// two-phase) with the cost model.
const TransposeSource = `parameter (n=64, nprocs=4)
real a(n,n), b(n,n)
!hpf$ processors pr(nprocs)
!hpf$ template d(n)
!hpf$ distribute d(block) on pr
!hpf$ align (*,:) with d :: a, b
FORALL (k=1:n)
  b(1:n,k) = a(k,1:n)
end FORALL
end
`

// EwiseSource is an elementwise multi-statement FORALL program used to
// exercise the compiler's second pattern class: scaled array updates with
// no communication.
const EwiseSource = `parameter (n=64, nprocs=4, alpha=3)
real x(n,n), y(n,n), z(n,n), w(n,n)
!hpf$ processors pr(nprocs)
!hpf$ template d(n)
!hpf$ distribute d(block) on pr
!hpf$ align (*,:) with d :: x, y, z, w
FORALL (k=1:n)
  z(1:n,k) = alpha*x(1:n,k) + y(1:n,k) - 1
end FORALL
FORALL (k=1:n)
  w(1:n,k) = z(1:n,k) * x(1:n,k) / 2
end FORALL
end
`
