package hpf

import (
	"fmt"
	"strings"
)

// Lex tokenizes mini-HPF source. Comments start with '!' and run to the
// end of the line, except for the '!hpf$' directive sentinel, which is
// returned as a DIRECTIVE token. Blank lines are collapsed.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	lastEmitted := func() Kind {
		if len(toks) == 0 {
			return NEWLINE
		}
		return toks[len(toks)-1].Kind
	}
	emit := func(k Kind, text string) {
		toks = append(toks, Token{Kind: k, Text: text, Line: line, Col: col})
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			if lastEmitted() != NEWLINE {
				emit(NEWLINE, "\\n")
			}
			i++
			line++
			col = 1
			continue
		case c == ' ' || c == '\t' || c == '\r':
			i++
			col++
			continue
		case c == '!':
			// Directive sentinel or comment.
			rest := src[i:]
			if len(rest) >= 5 && strings.EqualFold(rest[:5], "!hpf$") {
				emit(DIRECTIVE, "!hpf$")
				i += 5
				col += 5
				continue
			}
			for i < len(src) && src[i] != '\n' {
				i++
				col++
			}
			continue
		case isDigit(c):
			start := i
			for i < len(src) && isDigit(src[i]) {
				i++
			}
			emit(NUMBER, src[start:i])
			col += i - start
			continue
		case isIdentStart(c):
			start := i
			for i < len(src) && isIdentPart(src[i]) {
				i++
			}
			emit(IDENT, strings.ToLower(src[start:i]))
			col += i - start
			continue
		}
		// Punctuation.
		switch c {
		case '(':
			emit(LPAREN, "(")
		case ')':
			emit(RPAREN, ")")
		case ',':
			emit(COMMA, ",")
		case ':':
			if i+1 < len(src) && src[i+1] == ':' {
				emit(DCOLON, "::")
				i += 2
				col += 2
				continue
			}
			emit(COLON, ":")
		case '=':
			emit(EQUALS, "=")
		case '+':
			emit(PLUS, "+")
		case '-':
			emit(MINUS, "-")
		case '*':
			emit(STAR, "*")
		case '/':
			emit(SLASH, "/")
		default:
			return nil, fmt.Errorf("hpf: %d:%d: unexpected character %q", line, col, c)
		}
		i++
		col++
	}
	if lastEmitted() != NEWLINE {
		emit(NEWLINE, "\\n")
	}
	emit(EOF, "")
	return toks, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
