package sim

// Fail-stop failure detection parameters. The machine model detects a
// dead processor by missed heartbeats: peers exchange liveness probes
// every heartbeat interval, and a processor that misses a configured
// number of consecutive probes is declared dead. The simulated cost of
// detection is therefore a fixed stall after the real death time — no
// per-message overhead accrues while everything is healthy, which is
// what lets detection be free when disabled.

// DefaultHeartbeat is the default liveness-probe interval in simulated
// seconds. It is deliberately coarse next to the per-message times of
// the model (MsgTime of a kilobyte is ~10µs on the default machine):
// heartbeats ride on a low-priority channel and should not dominate
// recovery time estimates at small scales.
const DefaultHeartbeat = 1e-3

// DefaultHeartbeatMisses is the default number of consecutive missed
// probes after which a peer is declared dead. More than one miss guards
// against a probe lost to transient congestion on a real machine; the
// simulator models the resulting detection latency, not the probes.
const DefaultHeartbeatMisses = 3

// DetectionTimeout returns the simulated seconds between a processor
// dying and a healthy peer declaring it dead: misses consecutive missed
// heartbeats. Non-positive arguments fall back to the defaults.
func DetectionTimeout(heartbeat float64, misses int) float64 {
	if heartbeat <= 0 {
		heartbeat = DefaultHeartbeat
	}
	if misses <= 0 {
		misses = DefaultHeartbeatMisses
	}
	return heartbeat * float64(misses)
}
