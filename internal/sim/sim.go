// Package sim models the hardware of a distributed memory machine with a
// parallel I/O subsystem, in the style of the Intel Touchstone Delta used
// by Bordawekar, Choudhary and Thakur (SCCS-622 / IPPS'97).
//
// The model is deliberately simple and deterministic: every processor owns
// a virtual clock, and the runtime charges compute, communication and disk
// operations against those clocks using the constants in Config. The paper
// analyzes I/O cost through two metrics — the number of I/O requests per
// processor and the volume of data moved per processor — so the model maps
// exactly those metrics to simulated seconds.
package sim

import (
	"errors"
	"fmt"
	"math"
)

// Config describes the simulated machine. The zero value is not usable;
// start from Delta (the paper's testbed) or Modern and adjust.
type Config struct {
	// Procs is the number of compute processors P.
	Procs int

	// ComputeRate is the per-processor compute throughput in floating
	// point operations per second achieved on the node kernels.
	ComputeRate float64

	// MsgLatency is the fixed startup time of one message in seconds.
	MsgLatency float64

	// MsgBandwidth is the point-to-point bandwidth in bytes per second.
	MsgBandwidth float64

	// DiskRequestOverhead is the fixed cost, in seconds, of one I/O
	// request (seek, controller and file system overhead). A slab fetch
	// that touches k discontiguous regions of the local array file
	// issues k requests unless data sieving coalesces them.
	DiskRequestOverhead float64

	// DiskBandwidth caps the transfer rate of a single logical disk in
	// bytes per second, regardless of how idle the I/O subsystem is.
	DiskBandwidth float64

	// AggregateDiskBandwidth is the total transfer rate of the I/O
	// subsystem at Procs == 1, in bytes per second. The subsystem
	// scales sublinearly: with P processors the aggregate delivered
	// bandwidth is AggregateDiskBandwidth * P^IOScaling, shared evenly
	// by the P processors.
	AggregateDiskBandwidth float64

	// IOScaling is the exponent of the sublinear aggregate-bandwidth
	// growth described above. 0 freezes the aggregate (a single shared
	// channel), 1 gives every processor a private full-speed disk.
	IOScaling float64

	// ElemSize is the size in bytes of one array element as charged to
	// the cost model. The paper's arrays are real*4, so Delta uses 4
	// even though this implementation computes in float64.
	ElemSize int
}

// Delta returns a configuration calibrated against the Intel Touchstone
// Delta numbers reported in the paper (Table 1: 1K x 1K GAXPY matrix
// multiplication on 4..64 processors over the Concurrent File System).
// The calibration targets the in-core compute times and the column-slab
// I/O-bound times; everything else is prediction.
func Delta(procs int) Config {
	return Config{
		Procs:                  procs,
		ComputeRate:            3.8e6,
		MsgLatency:             80e-6,
		MsgBandwidth:           25e6,
		DiskRequestOverhead:    15e-3,
		DiskBandwidth:          2.5e6,
		AggregateDiskBandwidth: 4.65e6,
		IOScaling:              0.12,
		ElemSize:               4,
	}
}

// Modern returns a configuration resembling a contemporary cluster node
// with NVMe-class storage. Useful to show how the paper's trade-offs move
// when request overhead collapses.
func Modern(procs int) Config {
	return Config{
		Procs:                  procs,
		ComputeRate:            2e9,
		MsgLatency:             2e-6,
		MsgBandwidth:           10e9,
		DiskRequestOverhead:    50e-6,
		DiskBandwidth:          2e9,
		AggregateDiskBandwidth: 8e9,
		IOScaling:              0.5,
		ElemSize:               8,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Procs <= 0:
		return fmt.Errorf("sim: Procs must be positive, got %d", c.Procs)
	case c.ComputeRate <= 0:
		return errors.New("sim: ComputeRate must be positive")
	case c.MsgLatency < 0 || c.MsgBandwidth <= 0:
		return errors.New("sim: message cost parameters must be positive")
	case c.DiskRequestOverhead < 0:
		return errors.New("sim: DiskRequestOverhead must be non-negative")
	case c.DiskBandwidth <= 0 || c.AggregateDiskBandwidth <= 0:
		return errors.New("sim: disk bandwidths must be positive")
	case c.IOScaling < 0 || c.IOScaling > 1:
		return fmt.Errorf("sim: IOScaling must be in [0,1], got %g", c.IOScaling)
	case c.ElemSize <= 0:
		return fmt.Errorf("sim: ElemSize must be positive, got %d", c.ElemSize)
	}
	return nil
}

// EffectiveDiskBandwidth returns the disk bandwidth, in bytes per second,
// available to one processor when all Procs processors stream concurrently:
// the sublinearly scaled aggregate divided by P, capped by the speed of a
// single logical disk.
func (c Config) EffectiveDiskBandwidth() float64 {
	p := float64(c.Procs)
	agg := c.AggregateDiskBandwidth * math.Pow(p, c.IOScaling)
	return math.Min(c.DiskBandwidth, agg/p)
}

// IOTime returns the simulated seconds one processor spends on an I/O
// operation consisting of the given number of requests (discontiguous
// regions) moving the given number of bytes in total.
func (c Config) IOTime(requests int, bytes int64) float64 {
	return float64(requests)*c.DiskRequestOverhead + float64(bytes)/c.EffectiveDiskBandwidth()
}

// MsgTime returns the simulated seconds to move one point-to-point message
// of the given size.
func (c Config) MsgTime(bytes int64) float64 {
	return c.MsgLatency + float64(bytes)/c.MsgBandwidth
}

// ReduceTime returns the simulated seconds of a tree reduction (or
// broadcast) of a vector of the given size across P processors:
// ceil(log2 P) message steps.
func (c Config) ReduceTime(bytes int64) float64 {
	return float64(logSteps(c.Procs)) * c.MsgTime(bytes)
}

// ComputeTime returns the simulated seconds to execute the given number of
// floating point operations on one processor.
func (c Config) ComputeTime(flops int64) float64 {
	return float64(flops) / c.ComputeRate
}

// logSteps returns ceil(log2(p)) for p >= 1.
func logSteps(p int) int {
	steps := 0
	for n := 1; n < p; n <<= 1 {
		steps++
	}
	return steps
}

// Clock is a per-processor virtual clock. Clocks only move forward.
type Clock struct {
	seconds float64
}

// Advance moves the clock forward by dt seconds. Negative dt is ignored.
func (c *Clock) Advance(dt float64) {
	if dt > 0 {
		c.seconds += dt
	}
}

// SyncTo moves the clock forward to t if t is later than the current time.
// Collective operations use it to model the implicit barrier: every
// participant leaves at the time the slowest participant arrived plus the
// cost of the collective.
func (c *Clock) SyncTo(t float64) {
	if t > c.seconds {
		c.seconds = t
	}
}

// Seconds returns the current simulated time.
func (c *Clock) Seconds() float64 {
	return c.seconds
}
