package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeltaValidates(t *testing.T) {
	for _, p := range []int{1, 4, 16, 32, 64, 512} {
		if err := Delta(p).Validate(); err != nil {
			t.Errorf("Delta(%d) invalid: %v", p, err)
		}
	}
	if err := Modern(8).Validate(); err != nil {
		t.Errorf("Modern(8) invalid: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := Delta(4)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero procs", func(c *Config) { c.Procs = 0 }},
		{"negative procs", func(c *Config) { c.Procs = -1 }},
		{"zero compute", func(c *Config) { c.ComputeRate = 0 }},
		{"negative latency", func(c *Config) { c.MsgLatency = -1 }},
		{"zero msg bw", func(c *Config) { c.MsgBandwidth = 0 }},
		{"negative overhead", func(c *Config) { c.DiskRequestOverhead = -1 }},
		{"zero disk bw", func(c *Config) { c.DiskBandwidth = 0 }},
		{"zero agg bw", func(c *Config) { c.AggregateDiskBandwidth = 0 }},
		{"scaling above 1", func(c *Config) { c.IOScaling = 1.5 }},
		{"zero elem size", func(c *Config) { c.ElemSize = 0 }},
	}
	for _, tc := range cases {
		c := base
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestEffectiveDiskBandwidthSharing(t *testing.T) {
	// With IOScaling = 0 the aggregate is fixed, so the per-processor
	// share must halve when the processor count doubles.
	c4 := Delta(4)
	c4.IOScaling = 0
	c8 := Delta(8)
	c8.IOScaling = 0
	b4, b8 := c4.EffectiveDiskBandwidth(), c8.EffectiveDiskBandwidth()
	if math.Abs(b4/b8-2) > 1e-9 {
		t.Errorf("per-proc bandwidth should halve: P=4 gives %g, P=8 gives %g", b4, b8)
	}
}

func TestEffectiveDiskBandwidthCap(t *testing.T) {
	c := Delta(1)
	c.AggregateDiskBandwidth = 1e12 // absurdly fast subsystem
	if got := c.EffectiveDiskBandwidth(); got != c.DiskBandwidth {
		t.Errorf("per-disk cap not applied: got %g want %g", got, c.DiskBandwidth)
	}
}

func TestIOTimeComposition(t *testing.T) {
	c := Delta(4)
	eff := c.EffectiveDiskBandwidth()
	got := c.IOTime(10, 1<<20)
	want := 10*c.DiskRequestOverhead + float64(1<<20)/eff
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("IOTime = %g, want %g", got, want)
	}
	if c.IOTime(0, 0) != 0 {
		t.Errorf("IOTime(0,0) should be zero")
	}
}

func TestReduceTimeLogSteps(t *testing.T) {
	// ReduceTime across P processors takes ceil(log2 P) message steps.
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 64: 6}
	for p, steps := range cases {
		c := Delta(p)
		want := float64(steps) * c.MsgTime(4096)
		if got := c.ReduceTime(4096); math.Abs(got-want) > 1e-12 {
			t.Errorf("P=%d: ReduceTime = %g, want %g (%d steps)", p, got, want, steps)
		}
	}
}

func TestComputeTime(t *testing.T) {
	c := Delta(4)
	if got := c.ComputeTime(int64(c.ComputeRate)); math.Abs(got-1) > 1e-9 {
		t.Errorf("ComputeTime(rate) = %g, want 1", got)
	}
}

func TestClockMonotonic(t *testing.T) {
	var c Clock
	c.Advance(1.5)
	c.Advance(-10) // ignored
	if c.Seconds() != 1.5 {
		t.Errorf("clock went backwards: %g", c.Seconds())
	}
	c.SyncTo(1.0) // in the past, ignored
	if c.Seconds() != 1.5 {
		t.Errorf("SyncTo moved clock backwards: %g", c.Seconds())
	}
	c.SyncTo(3.0)
	if c.Seconds() != 3.0 {
		t.Errorf("SyncTo failed: %g", c.Seconds())
	}
}

func TestClockAdvanceProperty(t *testing.T) {
	// Property: for any sequence of Advance/SyncTo calls, the clock never
	// decreases.
	f := func(deltas []float64) bool {
		var c Clock
		prev := 0.0
		for i, d := range deltas {
			if i%2 == 0 {
				c.Advance(d)
			} else {
				c.SyncTo(d)
			}
			if c.Seconds() < prev || math.IsNaN(c.Seconds()) {
				return false
			}
			prev = c.Seconds()
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestColumnSlabIOBoundIsFlatInP(t *testing.T) {
	// The headline effect behind Table 1's column-slab rows: the total
	// I/O time of an access pattern that moves N^3/P elements per
	// processor is nearly independent of P, because the aggregate disk
	// bandwidth is (almost) fixed. Check flatness within a factor 1.7
	// over 4..64 processors (the paper's spread is ~1.5x).
	const n = 1024
	tAt := func(p int) float64 {
		c := Delta(p)
		bytes := int64(n) * int64(n) * int64(n) / int64(p) * int64(c.ElemSize)
		return c.IOTime(0, bytes)
	}
	t4, t64 := tAt(4), tAt(64)
	if r := t4 / t64; r < 1 || r > 1.7 {
		t.Errorf("column-slab I/O time ratio P=4 / P=64 = %g, want in [1, 1.7]", r)
	}
}
