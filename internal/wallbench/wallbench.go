// Package wallbench measures the simulator's own wall-clock cost — the
// time and heap traffic the host spends per simulated run — as opposed
// to bench_test.go, which reports the simulated seconds the paper's
// tables care about. Each kernel is a small, deterministic end-to-end
// run pinned to a fixed scale; the harness times it with
// testing.Benchmark and records ns/op, B/op, allocs/op and the simulated
// seconds (which must never change when the host-side code gets faster).
//
// cmd/ooc-bench -wallclock runs the suite, writes BENCH_wallclock.json,
// and — given a committed baseline — gates regressions: ns/op within a
// generous factor (timing is noisy on shared CI), allocs/op exactly
// (allocation counts of deterministic runs are reproducible).
package wallbench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"
)

// Result is one kernel's measurement.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// SimS is the simulated seconds the kernel reports. It is recorded
	// so the baseline doubles as a bitwise-identity witness: host-side
	// optimization must leave it unchanged to the digit.
	SimS float64 `json:"sim_s"`
}

// Report is the BENCH_wallclock.json document.
type Report struct {
	Note    string   `json:"note"`
	Kernels []Result `json:"kernels"`
}

// Kernel is one suite entry. Make performs the one-time setup (compile,
// probe) and returns the operation to be timed; the operation returns
// the simulated seconds of the run it performed.
type Kernel struct {
	Name string
	Make func() (func() (float64, error), error)
}

// RunKernel times one kernel.
func RunKernel(k Kernel) (Result, error) {
	op, err := k.Make()
	if err != nil {
		return Result{}, fmt.Errorf("wallbench: %s: setup: %w", k.Name, err)
	}
	// Warm-up run outside the timed region: it validates the kernel once
	// and pays one-time costs (lazy init, map growth) before measuring.
	simS, err := op()
	if err != nil {
		return Result{}, fmt.Errorf("wallbench: %s: %w", k.Name, err)
	}
	var opErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := op()
			if err != nil {
				opErr = err
				return
			}
			if s != simS {
				opErr = fmt.Errorf("simulated seconds changed between runs: %v then %v", simS, s)
				return
			}
		}
	})
	if opErr != nil {
		return Result{}, fmt.Errorf("wallbench: %s: %w", k.Name, opErr)
	}
	return Result{
		Name:        k.Name,
		NsPerOp:     float64(br.NsPerOp()),
		BytesPerOp:  br.AllocedBytesPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
		SimS:        simS,
	}, nil
}

// RunSuite runs the given kernels (all registered kernels when names is
// empty) and returns the report. Progress goes to stderr so CI logs show
// liveness.
func RunSuite(names []string) (*Report, error) {
	kernels := Kernels
	if len(names) > 0 {
		kernels = nil
		for _, name := range names {
			k, ok := kernelByName(name)
			if !ok {
				return nil, fmt.Errorf("wallbench: unknown kernel %q (have %s)", name, strings.Join(KernelNames(), ", "))
			}
			kernels = append(kernels, k)
		}
	}
	rep := &Report{Note: "wall-clock cost of the simulator itself; sim_s must stay bitwise identical across host-side optimization"}
	for _, k := range kernels {
		fmt.Fprintf(os.Stderr, "wallbench: %s...\n", k.Name)
		r, err := RunKernel(k)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "wallbench: %s: %.0f ns/op  %d B/op  %d allocs/op  sim_s=%v\n",
			k.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.SimS)
		rep.Kernels = append(rep.Kernels, r)
	}
	return rep, nil
}

func kernelByName(name string) (Kernel, bool) {
	for _, k := range Kernels {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}

// KernelNames lists the registered kernels in suite order.
func KernelNames() []string {
	names := make([]string, len(Kernels))
	for i, k := range Kernels {
		names[i] = k.Name
	}
	return names
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadReport reads a report written by WriteFile.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("wallbench: %s: %w", path, err)
	}
	return &r, nil
}

func (r *Report) byName() map[string]Result {
	m := make(map[string]Result, len(r.Kernels))
	for _, k := range r.Kernels {
		m[k.Name] = k
	}
	return m
}

// Compare gates cur against base: every baseline kernel must be present,
// its ns/op within nsFactor of the baseline (wall time is noisy), and
// its allocs/op no worse than the baseline exactly (allocation counts of
// deterministic kernels are reproducible, so any increase is a real
// regression). It returns an error listing every violation.
func Compare(cur, base *Report, nsFactor float64) error {
	curBy := cur.byName()
	var violations []string
	names := make([]string, 0, len(base.Kernels))
	for _, k := range base.Kernels {
		names = append(names, k.Name)
	}
	sort.Strings(names)
	baseBy := base.byName()
	for _, name := range names {
		b := baseBy[name]
		c, ok := curBy[name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: kernel missing from current run", name))
			continue
		}
		if limit := b.NsPerOp * nsFactor; c.NsPerOp > limit {
			violations = append(violations, fmt.Sprintf("%s: ns/op regressed: %.0f > %.1fx baseline %.0f",
				name, c.NsPerOp, nsFactor, b.NsPerOp))
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			violations = append(violations, fmt.Sprintf("%s: allocs/op regressed: %d > baseline %d",
				name, c.AllocsPerOp, b.AllocsPerOp))
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("wallbench: benchmark regression:\n  %s", strings.Join(violations, "\n  "))
	}
	return nil
}
