package wallbench

import (
	"fmt"

	"github.com/ooc-hpf/passion/internal/bytecode"
	"github.com/ooc-hpf/passion/internal/collio"
	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/dist"
	"github.com/ooc-hpf/passion/internal/exec"
	"github.com/ooc-hpf/passion/internal/gaxpy"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/mp"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/sim"
)

// Kernels is the suite, ordered from the narrowest hot path (raw message
// traffic) to the widest (a full protected run surviving a disk loss).
// Scales are fixed and small: the suite is a CI smoke gate, and the
// quantities it tracks (allocs/op especially) are scale-invariant
// signatures of the hot paths, not throughput numbers.
var Kernels = []Kernel{
	{Name: "sendrecv", Make: mkSendRecv},
	{Name: "gaxpy", Make: mkGaxpy},
	{Name: "gaxpy-plan", Make: mkPlan(hpf.GaxpySource, gaxpyPlanOpts, false)},
	{Name: "gaxpy-plan-bc", Make: mkPlan(hpf.GaxpySource, gaxpyPlanOpts, true)},
	{Name: "transpose", Make: mkTranspose},
	{Name: "transpose-bc", Make: mkPlan(hpf.TransposeSource, transposePlanOpts, true)},
	{Name: "redistribute", Make: mkRedistribute},
	{Name: "parity-diskloss", Make: mkParityDiskLoss},
	{Name: "ewise", Make: mkEwise},
	{Name: "ewise-bc", Make: mkPlan(hpf.EwiseSource, ewisePlanOpts, true)},
}

// Compile options of the dispatch-comparison pairs. Each *-bc kernel runs
// the identical compiled program and options as its tree-walk partner, so
// the ns/op delta is purely the interpreter dispatch cost and sim_s must
// agree to the digit between the two.
var (
	gaxpyPlanOpts     = compiler.Options{N: 128, Procs: 4, MemElems: 16 * 128}
	transposePlanOpts = compiler.Options{N: 256, Procs: 4, MemElems: 16 * 256, Force: "two-phase"}
	ewisePlanOpts     = compiler.Options{N: 256, Procs: 4, MemElems: 8 * 256}
)

// mkPlan builds a compiled-program kernel in phantom mode, executed
// through the selected dispatch engine: the plan-tree walk (bc=false) or
// the lowered opcode stream (bc=true). Lowering happens in setup, outside
// the timed region — matching a serving system that compiles once and
// dispatches many runs.
func mkPlan(src string, copts compiler.Options, bc bool) func() (func() (float64, error), error) {
	return func() (func() (float64, error), error) {
		res, err := compiler.CompileSource(src, copts)
		if err != nil {
			return nil, err
		}
		var prog *bytecode.Program
		if bc {
			if prog, err = bytecode.Compile(res.Program); err != nil {
				return nil, err
			}
		}
		op := func() (float64, error) {
			out, err := exec.Run(res.Program, sim.Delta(copts.Procs), exec.Options{
				Phantom: true, Bytecode: prog,
			})
			if err != nil {
				return 0, err
			}
			return out.Stats.ElapsedSeconds(), nil
		}
		return op, nil
	}
}

// mkSendRecv measures the raw point-to-point path: a two-rank ping-pong,
// 256 round trips of a 1024-element payload per op.
func mkSendRecv() (func() (float64, error), error) {
	const rounds, elems = 256, 1024
	payload := make([]float64, elems)
	for i := range payload {
		payload[i] = float64(i)
	}
	op := func() (float64, error) {
		st, err := mp.Run(sim.Delta(2), func(p *mp.Proc) error {
			peer := 1 - p.Rank()
			for i := 0; i < rounds; i++ {
				if p.Rank() == 0 {
					p.Send(peer, 7, payload)
					echo := p.Recv(peer, 8)
					if len(echo) != elems {
						return fmt.Errorf("echo length %d", len(echo))
					}
					mp.ReleaseBuf(echo)
				} else {
					in := p.Recv(peer, 7)
					p.Send(peer, 8, in)
					mp.ReleaseBuf(in)
				}
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
		return st.ElapsedSeconds(), nil
	}
	return op, nil
}

// mkGaxpy measures a real (non-phantom) hand-coded row-slab GAXPY: file
// data movement, slab staging and arithmetic.
func mkGaxpy() (func() (float64, error), error) {
	const n, procs = 128, 4
	slab := n * n / procs / 4
	op := func() (float64, error) {
		r, err := gaxpy.RunRowSlab(sim.Delta(procs), gaxpy.Config{N: n, SlabA: slab, SlabB: slab})
		if err != nil {
			return 0, err
		}
		return r.Stats.ElapsedSeconds(), nil
	}
	return op, nil
}

// mkTranspose measures the compiled out-of-core transpose over two-phase
// collective I/O in phantom mode: the shuffle's message traffic and the
// collio staging machinery, with disk payloads elided.
func mkTranspose() (func() (float64, error), error) {
	const n, procs = 256, 4
	res, err := compiler.CompileSource(hpf.TransposeSource, compiler.Options{
		N: n, Procs: procs, MemElems: 16 * n, Force: "two-phase",
	})
	if err != nil {
		return nil, err
	}
	op := func() (float64, error) {
		out, err := exec.Run(res.Program, sim.Delta(procs), exec.Options{Phantom: true})
		if err != nil {
			return 0, err
		}
		return out.Stats.ElapsedSeconds(), nil
	}
	return op, nil
}

// mkRedistribute measures a real column-block to row-block
// redistribution with direct destination writes under a tight memory
// budget — many rounds, so the per-round shuffle and staging costs
// dominate.
func mkRedistribute() (func() (float64, error), error) {
	const n, procs = 128, 4
	fill := func(gi, gj int) float64 { return float64(gi*n + gj) }
	op := func() (float64, error) {
		fs := iosim.NewMemFS()
		st, err := mp.Run(sim.Delta(procs), func(proc *mp.Proc) error {
			disk := iosim.NewDisk(fs, proc.Config(), &proc.Stats().IO)
			srcMap, err := dist.NewArray("src", dist.NewCollapsed(n), dist.NewBlock(n, procs))
			if err != nil {
				return err
			}
			src, err := oocarray.New(disk, srcMap, proc.Rank(), proc.Clock(), oocarray.Options{})
			if err != nil {
				return err
			}
			if err := src.FillGlobal(fill); err != nil {
				return err
			}
			dstMap, err := dist.NewArray("dst", dist.NewBlock(n, procs), dist.NewCollapsed(n))
			if err != nil {
				return err
			}
			dst, err := oocarray.New(disk, dstMap, proc.Rank(), proc.Clock(), oocarray.Options{})
			if err != nil {
				return err
			}
			return oocarray.RedistributeVia(proc, src, dst, 2*n, 100, nil, collio.Direct)
		})
		if err != nil {
			return 0, err
		}
		return st.ElapsedSeconds(), nil
	}
	return op, nil
}

// mkParityDiskLoss measures a full parity-protected compiled GAXPY that
// loses a logical disk mid-run and reconstructs it: the XOR
// delta/recover kernels, checksum verification and the retry machinery
// all on the measured path.
func mkParityDiskLoss() (func() (float64, error), error) {
	const n, procs = 64, 4
	const victim = "c.p1.laf"
	mach := sim.Delta(procs)
	cres, err := compiler.CompileSource(hpf.GaxpySource, compiler.Options{
		N: n, Procs: procs, MemElems: 12 * n, Machine: mach, Force: "column-slab",
	})
	if err != nil {
		return nil, err
	}
	fills := map[string]func(int, int) float64{"a": gaxpy.FillA, "b": gaxpy.FillB}
	pol := iosim.RetryPolicy{MaxRetries: 3, BaseBackoff: 1e-3, MaxBackoff: 4e-3}
	// Probe run: count the victim's operations so the loss lands mid-stream.
	probe := iosim.NewChaosFS(iosim.NewMemFS(), iosim.ChaosConfig{})
	pr, err := exec.Run(cres.Program, mach, exec.Options{
		FS: probe, Fill: fills, Resilience: iosim.NewResilience(pol), Parity: true,
	})
	if err != nil {
		return nil, err
	}
	pr.Close()
	lossOp := probe.FileOps(victim) / 2
	op := func() (float64, error) {
		chaos := iosim.NewChaosFS(iosim.NewMemFS(), iosim.ChaosConfig{
			Schedule: []iosim.ScheduledFault{{File: victim, Op: lossOp, Kind: iosim.KindDiskLoss}},
		})
		out, err := exec.Run(cres.Program, mach, exec.Options{
			FS: chaos, Fill: fills, Resilience: iosim.NewResilience(pol), Parity: true,
		})
		if err != nil {
			return 0, err
		}
		if chaos.Counts().DiskLosses == 0 {
			return 0, fmt.Errorf("scheduled disk loss never fired")
		}
		sec := out.Stats.ElapsedSeconds()
		out.Close()
		return sec, nil
	}
	return op, nil
}

// mkEwise measures the compiled elementwise pattern in phantom mode: the
// ghost-exchange Send/Recv path plus the slab pipeline bookkeeping.
func mkEwise() (func() (float64, error), error) {
	const n, procs = 256, 4
	res, err := compiler.CompileSource(hpf.EwiseSource, compiler.Options{
		N: n, Procs: procs, MemElems: 8 * n,
	})
	if err != nil {
		return nil, err
	}
	op := func() (float64, error) {
		out, err := exec.Run(res.Program, sim.Delta(procs), exec.Options{Phantom: true})
		if err != nil {
			return 0, err
		}
		return out.Stats.ElapsedSeconds(), nil
	}
	return op, nil
}
