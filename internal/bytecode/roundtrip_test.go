package bytecode_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/ooc-hpf/passion/internal/bytecode"
	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/plan"
)

// corpus compiles every program shape the repository knows — the built-in
// kernels plus the testdata .hpf corpus — into plans, covering every
// opcode the lowering can emit (SumStore loops, redistribution, shifted
// and aligned FORALLs, streaming reads, auto-staging).
func corpus(t *testing.T) map[string]*plan.Program {
	t.Helper()
	out := map[string]*plan.Program{}
	add := func(name, src string, opts compiler.Options) {
		res, err := compiler.CompileSource(src, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = res.Program
	}
	add("gaxpy/row-slab", hpf.GaxpySource, compiler.Options{N: 32, Procs: 4, MemElems: 300, Force: "row-slab"})
	add("gaxpy/column-slab", hpf.GaxpySource, compiler.Options{N: 32, Procs: 4, MemElems: 300, Force: "column-slab"})
	add("gaxpy/sieve", hpf.GaxpySource, compiler.Options{N: 64, Procs: 4, MemElems: 700, Sieve: true})
	add("transpose/direct", hpf.TransposeSource, compiler.Options{N: 64, Procs: 4, MemElems: 16 * 64, Force: "direct"})
	add("transpose/two-phase", hpf.TransposeSource, compiler.Options{N: 64, Procs: 4, MemElems: 16 * 64, Force: "two-phase"})
	add("ewise", hpf.EwiseSource, compiler.Options{N: 64, Procs: 4, MemElems: 64 * 8})
	files, err := filepath.Glob("../../testdata/*.hpf")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata corpus: %v", err)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		add("testdata/"+filepath.Base(f), string(src), compiler.Options{MemElems: 1 << 14})
	}
	return out
}

// TestGoldenRoundTrip pins the serialization contract: encode → decode →
// re-encode is byte-identical, the decoded program is structurally equal
// to the compiled one, and lowering preserves the plan fingerprint — so
// a cache keyed on plan.Fingerprint can persist either form.
func TestGoldenRoundTrip(t *testing.T) {
	for name, p := range corpus(t) {
		t.Run(name, func(t *testing.T) {
			bc, err := bytecode.Compile(p)
			if err != nil {
				t.Fatal(err)
			}
			if want := plan.Fingerprint(p, nil); bc.Fingerprint != want {
				t.Fatalf("lowering changed the fingerprint: %s vs %s", bc.Fingerprint, want)
			}
			enc := bytecode.Encode(bc)
			dec, err := bytecode.Decode(enc)
			if err != nil {
				t.Fatalf("decode of a fresh encode: %v", err)
			}
			if !reflect.DeepEqual(bc, dec) {
				t.Fatal("decoded program differs structurally from the compiled one")
			}
			enc2 := bytecode.Encode(dec)
			if !bytes.Equal(enc, enc2) {
				t.Fatal("re-encode is not byte-identical")
			}
			if err := dec.Validate(); err != nil {
				t.Fatalf("decoded program fails validation: %v", err)
			}
		})
	}
}

// TestDisassembleCoversCode smoke-checks the disassembly: one line per
// instruction, symbolic operand names resolved from the tables.
func TestDisassembleCoversCode(t *testing.T) {
	for name, p := range corpus(t) {
		t.Run(name, func(t *testing.T) {
			bc, err := bytecode.Compile(p)
			if err != nil {
				t.Fatal(err)
			}
			d := bc.Disassemble()
			for _, ins := range bc.Code {
				if !strings.Contains(d, ins.Op.String()) {
					t.Fatalf("disassembly missing opcode %s:\n%s", ins.Op, d)
				}
			}
			if !strings.Contains(d, bc.Fingerprint) {
				t.Error("disassembly missing the fingerprint header")
			}
		})
	}
}

// typedDecodeErr reports whether err is one of the package's declared
// decode failures — the contract is that Decode returns nothing else.
func typedDecodeErr(err error) bool {
	for _, want := range []error{
		bytecode.ErrBadMagic, bytecode.ErrVersion, bytecode.ErrTruncated,
		bytecode.ErrChecksum, bytecode.ErrMalformed,
	} {
		if errors.Is(err, want) {
			return true
		}
	}
	return false
}

func encodedGaxpy(t *testing.T) []byte {
	t.Helper()
	res, err := compiler.CompileSource(hpf.GaxpySource, compiler.Options{N: 32, Procs: 4, MemElems: 300})
	if err != nil {
		t.Fatal(err)
	}
	bc, err := bytecode.Compile(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	return bytecode.Encode(bc)
}

// TestDecodeRejectsTruncation cuts the stream at every length: each
// prefix must fail with a typed error, never panic, never succeed.
func TestDecodeRejectsTruncation(t *testing.T) {
	enc := encodedGaxpy(t)
	for i := 0; i < len(enc); i++ {
		if _, err := bytecode.Decode(enc[:i]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded successfully", i, len(enc))
		} else if !typedDecodeErr(err) {
			t.Fatalf("truncation to %d bytes: untyped error %v", i, err)
		}
	}
}

// TestDecodeRejectsBitFlips flips one bit in every byte of the frame.
// Header flips must produce magic/version/length/checksum errors; payload
// flips are caught by the CRC. No flip may panic or decode.
func TestDecodeRejectsBitFlips(t *testing.T) {
	enc := encodedGaxpy(t)
	for i := range enc {
		for bit := 0; bit < 8; bit++ {
			mut := bytes.Clone(enc)
			mut[i] ^= 1 << bit
			if _, err := bytecode.Decode(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d decoded successfully", i, bit)
			} else if !typedDecodeErr(err) {
				t.Fatalf("bit flip at byte %d bit %d: untyped error %v", i, bit, err)
			}
		}
	}
}

// TestDecodeRejectsPayloadCorruptionBehindValidCRC re-frames corrupted
// payloads with a freshly computed checksum, so the damage reaches the
// structural decoder and validator. Still: typed error or a valid
// program, never a panic.
func TestDecodeRejectsPayloadCorruptionBehindValidCRC(t *testing.T) {
	enc := encodedGaxpy(t)
	for i := len(bytecode.Magic) + 12; i < len(enc); i++ {
		for _, v := range []byte{0x00, 0xff, enc[i] + 1} {
			mut := bytes.Clone(enc)
			mut[i] = v
			reframe(mut)
			if _, err := bytecode.Decode(mut); err != nil && !typedDecodeErr(err) {
				t.Fatalf("payload byte %d = %#x: untyped error %v", i, v, err)
			}
		}
	}
}

// reframe recomputes the payload CRC in place (the frame layout is
// magic + version + length + crc + payload, all big-endian).
func reframe(b []byte) {
	payload := b[len(bytecode.Magic)+12:]
	crc := crc32IEEE(payload)
	off := len(bytecode.Magic) + 8
	b[off] = byte(crc >> 24)
	b[off+1] = byte(crc >> 16)
	b[off+2] = byte(crc >> 8)
	b[off+3] = byte(crc)
}

func crc32IEEE(b []byte) uint32 {
	const poly = 0xedb88320
	crc := ^uint32(0)
	for _, x := range b {
		crc ^= uint32(x)
		for k := 0; k < 8; k++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ poly
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}

// TestDecodeRejectsWrongVersion bumps the frame version.
func TestDecodeRejectsWrongVersion(t *testing.T) {
	enc := encodedGaxpy(t)
	mut := bytes.Clone(enc)
	mut[len(bytecode.Magic)+3]++ // low byte of the version word
	if _, err := bytecode.Decode(mut); !errors.Is(err, bytecode.ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
}

// TestDecodeRejectsTrailingBytes: extra bytes after the declared payload
// are malformed, not silently ignored.
func TestDecodeRejectsTrailingBytes(t *testing.T) {
	enc := append(encodedGaxpy(t), 0xAA)
	if _, err := bytecode.Decode(enc); !errors.Is(err, bytecode.ErrMalformed) {
		t.Fatalf("want ErrMalformed, got %v", err)
	}
}

// TestDecodeBoundsHostileLengths hand-builds a frame whose payload
// declares a multi-gigabyte string: the decoder must refuse without
// attempting the allocation.
func TestDecodeBoundsHostileLengths(t *testing.T) {
	payload := []byte{0xff, 0xff, 0xff, 0xf0} // name length ~4 GiB
	frame := []byte(bytecode.Magic)
	frame = append(frame, 0, 0, 0, byte(bytecode.Version))
	frame = append(frame, 0, 0, 0, byte(len(payload)))
	crc := crc32IEEE(payload)
	frame = append(frame, byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc))
	frame = append(frame, payload...)
	if _, err := bytecode.Decode(frame); !errors.Is(err, bytecode.ErrTruncated) {
		t.Fatalf("want ErrTruncated for a hostile length, got %v", err)
	}
}

// FuzzDecode: any byte stream produces a typed error or a valid,
// re-encodable program — never a panic.
func FuzzDecode(f *testing.F) {
	res, err := compiler.CompileSource(hpf.GaxpySource, compiler.Options{N: 32, Procs: 4, MemElems: 300})
	if err != nil {
		f.Fatal(err)
	}
	bc, err := bytecode.Compile(res.Program)
	if err != nil {
		f.Fatal(err)
	}
	enc := bytecode.Encode(bc)
	f.Add(enc)
	f.Add(enc[:len(enc)/2])
	f.Add([]byte(bytecode.Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := bytecode.Decode(data)
		if err != nil {
			if !typedDecodeErr(err) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// A stream that decodes must round-trip stably.
		enc2 := bytecode.Encode(p)
		p2, err := bytecode.Decode(enc2)
		if err != nil {
			t.Fatalf("re-encode of a decoded program does not decode: %v", err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatal("re-encode round trip changed the program")
		}
	})
}
