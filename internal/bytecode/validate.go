package bytecode

import (
	"fmt"

	"github.com/ooc-hpf/passion/internal/collio"
)

// Validate structurally checks the program: every opcode is known, every
// operand indexes its table, loops nest and backpatch consistently, the
// node jump table points at OpNodeEnter instructions, and every
// expression program observes stack discipline (no underflow, exactly one
// result) and its context's leaf set. Compile runs it on its own output
// as insurance; Decode runs it so a stream that frames and checksums
// correctly but encodes garbage is still rejected before execution.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("%w: empty code stream", ErrMalformed)
	}
	slot := func(pc int, v int32, n int, what string) error {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("%w: pc %d: %s %d out of range [0,%d)", ErrMalformed, pc, what, v, n)
		}
		return nil
	}
	optSlot := func(pc int, v int32, n int, what string) error {
		if v == -1 {
			return nil
		}
		return slot(pc, v, n, what)
	}
	var loops []int32
	for pc, ins := range p.Code {
		if ins.Op <= OpInvalid || ins.Op >= opCount {
			return fmt.Errorf("%w: pc %d: unknown opcode %d", ErrMalformed, pc, uint8(ins.Op))
		}
		var err error
		switch ins.Op {
		case OpNodeEnter, OpNodeExit:
			if err = slot(pc, ins.A, len(p.NodePC), "node index"); err == nil {
				err = slot(pc, ins.B, len(p.Labels), "label index")
			}
		case OpCkpt:
			err = slot(pc, ins.A, len(p.NodePC), "node index")
		case OpLoop, OpLoopCkpt:
			if err = slot(pc, ins.A, len(p.VarNames), "variable slot"); err != nil {
				break
			}
			switch ins.B {
			case CountLit:
				if ins.C < 0 {
					err = fmt.Errorf("%w: pc %d: negative literal loop count %d", ErrMalformed, pc, ins.C)
				}
			case CountSlabs:
				err = slot(pc, ins.C, len(p.Arrays), "array index")
			case CountCols:
				err = slot(pc, ins.C, len(p.BufNames), "buffer slot")
			default:
				err = fmt.Errorf("%w: pc %d: unknown count kind %d", ErrMalformed, pc, ins.B)
			}
			if err == nil && (ins.D <= int32(pc) || int(ins.D) > len(p.Code)) {
				err = fmt.Errorf("%w: pc %d: loop exit target %d outside (%d,%d]", ErrMalformed, pc, ins.D, pc, len(p.Code))
			}
			if err == nil && ins.Op == OpLoopCkpt {
				err = slot(pc, ins.E, len(p.NodePC), "checkpoint node index")
			}
			if err == nil {
				loops = append(loops, int32(pc))
			}
		case OpEndLoop:
			if len(loops) == 0 {
				return fmt.Errorf("%w: pc %d: END_LOOP without an open loop", ErrMalformed, pc)
			}
			open := loops[len(loops)-1]
			loops = loops[:len(loops)-1]
			if ins.A != open {
				return fmt.Errorf("%w: pc %d: END_LOOP names loop %d, innermost open loop is %d", ErrMalformed, pc, ins.A, open)
			}
			if p.Code[open].D != int32(pc)+1 {
				return fmt.Errorf("%w: pc %d: loop at %d exits to %d, not past its END_LOOP", ErrMalformed, pc, open, p.Code[open].D)
			}
		case OpLoadSlab:
			if err = slot(pc, ins.A, len(p.Arrays), "array index"); err != nil {
				break
			}
			if err = slot(pc, ins.B, len(p.VarNames), "variable slot"); err != nil {
				break
			}
			if err = slot(pc, ins.C, len(p.BufNames), "buffer slot"); err != nil {
				break
			}
			switch ins.D {
			case 0:
				if ins.E != -1 {
					err = fmt.Errorf("%w: pc %d: reader %d on a non-streaming load", ErrMalformed, pc, ins.E)
				}
			case 1:
				err = slot(pc, ins.E, p.Readers, "reader slot")
			default:
				err = fmt.Errorf("%w: pc %d: unknown stream flag %d", ErrMalformed, pc, ins.D)
			}
		case OpNewStaging:
			if err = slot(pc, ins.A, len(p.Arrays), "array index"); err == nil {
				if err = slot(pc, ins.B, len(p.BufNames), "buffer slot"); err == nil {
					err = slot(pc, ins.C, len(p.BufNames), "buffer slot")
				}
			}
		case OpAutoStage, OpFlushStage:
			err = slot(pc, ins.A, len(p.Arrays), "array index")
		case OpStoreSlab:
			if err = slot(pc, ins.A, len(p.Arrays), "array index"); err == nil {
				err = slot(pc, ins.B, len(p.BufNames), "buffer slot")
			}
		case OpZeroVec:
			if err = slot(pc, ins.A, len(p.VecNames), "vector slot"); err != nil {
				break
			}
			if (ins.B == -1) == (ins.C == -1) {
				err = fmt.Errorf("%w: pc %d: ZERO_VEC needs exactly one of rows-like buffer and array", ErrMalformed, pc)
				break
			}
			if err = optSlot(pc, ins.B, len(p.BufNames), "buffer slot"); err == nil {
				err = optSlot(pc, ins.C, len(p.Arrays), "array index")
			}
		case OpAxpy:
			for _, ck := range []struct {
				v    int32
				n    int
				what string
				opt  bool
			}{
				{ins.A, len(p.VecNames), "vector slot", false},
				{ins.B, len(p.BufNames), "buffer slot", false},
				{ins.C, len(p.VarNames), "variable slot", false},
				{ins.D, len(p.BufNames), "buffer slot", false},
				{ins.E, len(p.VarNames), "variable slot", true},
				{ins.F, len(p.Arrays), "array index", true},
				{ins.G, len(p.VarNames), "variable slot", true},
				{ins.H, len(p.VarNames), "variable slot", false},
			} {
				if ck.opt {
					err = optSlot(pc, ck.v, ck.n, ck.what)
				} else {
					err = slot(pc, ck.v, ck.n, ck.what)
				}
				if err != nil {
					break
				}
			}
			if err == nil && ins.E == -1 && ins.F != -1 {
				err = fmt.Errorf("%w: pc %d: AXPY row scale without a row base", ErrMalformed, pc)
			}
		case OpSumStore:
			if err = slot(pc, ins.A, len(p.VecNames), "vector slot"); err == nil {
				err = slot(pc, ins.B, len(p.Arrays), "array index")
			}
		case OpNewSlab:
			if err = slot(pc, ins.A, len(p.Arrays), "array index"); err == nil {
				if err = slot(pc, ins.B, len(p.VarNames), "variable slot"); err == nil {
					err = slot(pc, ins.C, len(p.BufNames), "buffer slot")
				}
			}
		case OpEwise:
			if err = slot(pc, ins.A, len(p.BufNames), "buffer slot"); err != nil {
				break
			}
			if err = slot(pc, ins.B, len(p.Exprs), "expression index"); err != nil {
				break
			}
			err = p.validateExpr(int(ins.B), false)
		case OpShiftEwise:
			if err = slot(pc, ins.A, len(p.Arrays), "array index"); err != nil {
				break
			}
			if err = slot(pc, ins.B, len(p.Exprs), "expression index"); err != nil {
				break
			}
			if err = p.validateExpr(int(ins.B), true); err != nil {
				break
			}
			if ins.E < 0 || ins.F < 0 {
				err = fmt.Errorf("%w: pc %d: negative ghost widths (%d,%d)", ErrMalformed, pc, ins.E, ins.F)
			}
		case OpAllToAll:
			if err = slot(pc, ins.A, len(p.Arrays), "array index"); err != nil {
				break
			}
			if err = slot(pc, ins.B, len(p.Arrays), "array index"); err != nil {
				break
			}
			if ins.C != 0 && ins.C != 1 {
				err = fmt.Errorf("%w: pc %d: transpose flag %d", ErrMalformed, pc, ins.C)
				break
			}
			if m := collio.Method(ins.D); m != collio.Direct && m != collio.Sieved && m != collio.TwoPhase {
				err = fmt.Errorf("%w: pc %d: unknown redistribution method %d", ErrMalformed, pc, ins.D)
			}
		}
		if err != nil {
			return err
		}
	}
	if len(loops) != 0 {
		return fmt.Errorf("%w: %d loops never closed", ErrMalformed, len(loops))
	}
	for i, pc := range p.NodePC {
		if pc < 0 || int(pc) >= len(p.Code) || p.Code[pc].Op != OpNodeEnter || p.Code[pc].A != int32(i) {
			return fmt.Errorf("%w: node %d jump table entry %d does not land on its NODE_ENTER", ErrMalformed, i, pc)
		}
	}
	if p.Readers < 0 {
		return fmt.Errorf("%w: negative reader count %d", ErrMalformed, p.Readers)
	}
	return nil
}

// validateExpr checks one postfix expression program: stack discipline
// (never pops an empty stack, leaves exactly one result), operand ranges,
// and the context's leaf set — elementwise expressions read aligned
// buffers, shifted FORALLs read shifted arrays, never the other way.
func (p *Program) validateExpr(idx int, shift bool) error {
	code := p.Exprs[idx]
	depth := 0
	for i, ins := range code {
		switch ins.Op {
		case EPushConst:
			depth++
		case EPushBuf:
			if shift {
				return fmt.Errorf("%w: expr %d op %d: aligned buffer read inside a shifted FORALL", ErrMalformed, idx, i)
			}
			if ins.A < 0 || int(ins.A) >= len(p.BufNames) {
				return fmt.Errorf("%w: expr %d op %d: buffer slot %d out of range", ErrMalformed, idx, i, ins.A)
			}
			depth++
		case EPushShift:
			if !shift {
				return fmt.Errorf("%w: expr %d op %d: shifted read outside a shifted FORALL", ErrMalformed, idx, i)
			}
			if ins.A < 0 || int(ins.A) >= len(p.Arrays) {
				return fmt.Errorf("%w: expr %d op %d: array index %d out of range", ErrMalformed, idx, i, ins.A)
			}
			depth++
		case EAdd, ESub, EMul, EDiv:
			if depth < 2 {
				return fmt.Errorf("%w: expr %d op %d: operator on a stack of %d", ErrMalformed, idx, i, depth)
			}
			depth--
		default:
			return fmt.Errorf("%w: expr %d op %d: unknown expression opcode %d", ErrMalformed, idx, i, uint8(ins.Op))
		}
	}
	if depth != 1 {
		return fmt.Errorf("%w: expr %d leaves %d results on the stack", ErrMalformed, idx, depth)
	}
	return nil
}

// MaxExprDepth returns the deepest evaluation stack any expression
// program in the table needs; the executor sizes its scratch stack with
// it once instead of growing per evaluation.
func (p *Program) MaxExprDepth() int {
	max := 0
	for _, code := range p.Exprs {
		depth, peak := 0, 0
		for _, ins := range code {
			switch ins.Op {
			case EPushConst, EPushBuf, EPushShift:
				depth++
				if depth > peak {
					peak = depth
				}
			case EAdd, ESub, EMul, EDiv:
				depth--
			}
		}
		if peak > max {
			max = peak
		}
	}
	return max
}
