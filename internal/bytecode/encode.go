package bytecode

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"github.com/ooc-hpf/passion/internal/dist"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/plan"
)

// Magic frames every encoded bytecode program (8 bytes).
const Magic = "OOCBC01\n"

// Typed decode failures. Decode wraps each with position detail; callers
// dispatch with errors.Is. A byte stream, whatever its contents, produces
// one of these or a valid Program — never a panic.
var (
	// ErrBadMagic: the stream does not start with the bytecode magic.
	ErrBadMagic = errors.New("bytecode: bad magic")
	// ErrVersion: the stream's encoding version is not this package's.
	ErrVersion = errors.New("bytecode: unsupported version")
	// ErrTruncated: the stream ends before its declared contents do.
	ErrTruncated = errors.New("bytecode: truncated stream")
	// ErrChecksum: the payload does not match its frame checksum.
	ErrChecksum = errors.New("bytecode: payload checksum mismatch")
	// ErrMalformed: the payload decodes but violates the program's
	// structural invariants (also returned by Validate).
	ErrMalformed = errors.New("bytecode: malformed program")
)

// Encode serializes the program: magic, version, payload length, payload
// CRC32 (IEEE), payload, all big-endian. The payload has no maps and no
// varints — every field is emitted in declaration order at a fixed width —
// so encoding is deterministic: Encode(Decode(b)) reproduces b byte for
// byte, and equal programs encode equally.
func Encode(p *Program) []byte {
	var w encBuf
	w.str(p.Name)
	w.u64(uint64(p.N))
	w.u64(uint64(p.Procs))
	w.str(p.Strategy)
	w.str(p.Fingerprint)
	w.u32(uint32(len(p.Arrays)))
	for _, a := range p.Arrays {
		w.str(a.Name)
		w.u64(uint64(a.Rows))
		w.u64(uint64(a.Cols))
		w.u32(uint32(a.RowScheme))
		w.u32(uint32(a.ColScheme))
		w.u32(uint32(a.Role))
		w.u32(uint32(len(a.Grid)))
		for _, g := range a.Grid {
			w.u64(uint64(g))
		}
		w.u64(uint64(a.SlabElems))
		w.u32(uint32(a.SlabDim))
	}
	w.strs(p.VarNames)
	w.strs(p.BufNames)
	w.strs(p.VecNames)
	w.strs(p.Labels)
	w.u32(uint32(len(p.Exprs)))
	for _, code := range p.Exprs {
		w.u32(uint32(len(code)))
		for _, ins := range code {
			w.buf = append(w.buf, byte(ins.Op))
			w.i32(ins.A)
			w.i32(ins.B)
			w.u64(math.Float64bits(ins.Val))
		}
	}
	w.u32(uint32(len(p.Code)))
	for _, ins := range p.Code {
		w.buf = append(w.buf, byte(ins.Op))
		for _, v := range [...]int32{ins.A, ins.B, ins.C, ins.D, ins.E, ins.F, ins.G, ins.H} {
			w.i32(v)
		}
	}
	w.u32(uint32(len(p.NodePC)))
	for _, pc := range p.NodePC {
		w.i32(pc)
	}
	w.u32(uint32(p.Readers))

	frame := make([]byte, 0, len(Magic)+12+len(w.buf))
	frame = append(frame, Magic...)
	frame = binary.BigEndian.AppendUint32(frame, Version)
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(w.buf)))
	frame = binary.BigEndian.AppendUint32(frame, crc32.ChecksumIEEE(w.buf))
	return append(frame, w.buf...)
}

type encBuf struct{ buf []byte }

func (w *encBuf) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *encBuf) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *encBuf) i32(v int32)  { w.u32(uint32(v)) }
func (w *encBuf) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *encBuf) strs(s []string) {
	w.u32(uint32(len(s)))
	for _, x := range s {
		w.str(x)
	}
}

// Decode parses an encoded program, verifying the frame (magic, version,
// length, checksum) and then the structure (Validate). Every length read
// from the stream is checked against the bytes actually remaining before
// any allocation is sized by it, so corrupt or adversarial streams fail
// with a typed error instead of a panic or a huge allocation.
func Decode(b []byte) (*Program, error) {
	if len(b) < len(Magic) {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the magic", ErrTruncated, len(b))
	}
	if string(b[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	if len(b) < len(Magic)+12 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the frame header", ErrTruncated, len(b))
	}
	if v := binary.BigEndian.Uint32(b[len(Magic):]); v != Version {
		return nil, fmt.Errorf("%w: stream version %d, this build reads %d", ErrVersion, v, Version)
	}
	plen := binary.BigEndian.Uint32(b[len(Magic)+4:])
	want := binary.BigEndian.Uint32(b[len(Magic)+8:])
	payload := b[len(Magic)+12:]
	if uint64(len(payload)) < uint64(plen) {
		return nil, fmt.Errorf("%w: payload declares %d bytes, %d present", ErrTruncated, plen, len(payload))
	}
	if uint64(len(payload)) > uint64(plen) {
		return nil, fmt.Errorf("%w: %d bytes trail the declared payload", ErrMalformed, len(payload)-int(plen))
	}
	if crc32.ChecksumIEEE(payload) != want {
		return nil, ErrChecksum
	}
	r := &decBuf{buf: payload}
	p := &Program{}
	p.Name = r.str("name")
	p.N = int(r.u64("n"))
	p.Procs = int(r.u64("procs"))
	p.Strategy = r.str("strategy")
	p.Fingerprint = r.str("fingerprint")
	for range r.count("array table", arrayEncMin) {
		var a plan.ArraySpec
		a.Name = r.str("array name")
		a.Rows = int(r.u64("array rows"))
		a.Cols = int(r.u64("array cols"))
		a.RowScheme = dist.Scheme(r.u32("array row scheme"))
		a.ColScheme = dist.Scheme(r.u32("array col scheme"))
		a.Role = plan.Role(r.u32("array role"))
		for range r.count("array grid", 8) {
			a.Grid = append(a.Grid, int(r.u64("array grid extent")))
		}
		a.SlabElems = int(r.u64("array slab elems"))
		a.SlabDim = oocarray.Dim(r.u32("array slab dim"))
		p.Arrays = append(p.Arrays, a)
	}
	p.VarNames = r.strs("variable names")
	p.BufNames = r.strs("buffer names")
	p.VecNames = r.strs("vector names")
	p.Labels = r.strs("node labels")
	for range r.count("expression table", 4) {
		var code []ExprInstr
		for range r.count("expression program", exprInstrEnc) {
			var ins ExprInstr
			ins.Op = ExprOp(r.u8("expression opcode"))
			ins.A = r.i32("expression operand")
			ins.B = r.i32("expression operand")
			ins.Val = math.Float64frombits(r.u64("expression constant"))
			code = append(code, ins)
		}
		p.Exprs = append(p.Exprs, code)
	}
	for range r.count("code stream", instrEnc) {
		var ins Instr
		ins.Op = Op(r.u8("opcode"))
		for _, v := range [...]*int32{&ins.A, &ins.B, &ins.C, &ins.D, &ins.E, &ins.F, &ins.G, &ins.H} {
			*v = r.i32("operand")
		}
		p.Code = append(p.Code, ins)
	}
	for range r.count("node jump table", 4) {
		p.NodePC = append(p.NodePC, r.i32("node pc"))
	}
	p.Readers = int(r.u32("reader count"))
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("%w: %d undecoded payload bytes", ErrMalformed, len(r.buf))
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Encoded sizes of the fixed-width records, used to bound declared counts
// by the bytes remaining.
const (
	instrEnc     = 1 + 8*4
	exprInstrEnc = 1 + 2*4 + 8
	// arrayEncMin is the smallest possible array record.
	arrayEncMin = 4 + 8 + 8 + 4 + 4 + 4 + 4 + 8 + 4
)

// decBuf is a cursor over the payload. The first failed read latches err
// and every later read returns zero values, so decoding code reads
// straight-line and checks once.
type decBuf struct {
	buf []byte
	err error
}

func (r *decBuf) fail(what string, need int) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s needs %d bytes, %d remain", ErrTruncated, what, need, len(r.buf))
	}
}

func (r *decBuf) take(what string, n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.fail(what, n)
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

func (r *decBuf) u8(what string) uint8 {
	b := r.take(what, 1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *decBuf) u32(what string) uint32 {
	b := r.take(what, 4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *decBuf) u64(what string) uint64 {
	b := r.take(what, 8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *decBuf) i32(what string) int32 { return int32(r.u32(what)) }

// count reads a list length and bounds it by the bytes remaining (at
// minSize bytes per element), so a corrupted length cannot drive a huge
// allocation or a long spin.
func (r *decBuf) count(what string, minSize int) int {
	n := r.u32(what + " length")
	if r.err != nil {
		return 0
	}
	if uint64(n)*uint64(minSize) > uint64(len(r.buf)) {
		r.fail(what, int(n) * minSize)
		return 0
	}
	return int(n)
}

func (r *decBuf) str(what string) string {
	n := r.count(what, 1)
	return string(r.take(what, n))
}

func (r *decBuf) strs(what string) []string {
	var out []string
	for range r.count(what, 4) {
		out = append(out, r.str(what))
	}
	return out
}
