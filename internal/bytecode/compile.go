package bytecode

import (
	"fmt"

	"github.com/ooc-hpf/passion/internal/collio"
	"github.com/ooc-hpf/passion/internal/plan"
)

// Compile lowers a plan program to its flat opcode stream. Every name the
// tree-walking interpreter would resolve through a map at runtime — loop
// variables, slab buffers, accumulation vectors, arrays — is resolved
// here, once, to a slot or table index, and every structural property the
// interpreter re-derives per node (checkpoint eligibility, redistribution
// method, per-element operation counts, span labels) is precomputed into
// instruction operands.
//
// Compile also performs the static checks the interpreter performs
// dynamically: a reference to an undefined buffer, a dead loop variable or
// an unknown array — conditions the tree walk would hit on the first
// iteration anyway — become compile errors.
func Compile(p *plan.Program) (*Program, error) {
	c := &compiler{
		bc: &Program{
			Name:        p.Name,
			N:           p.N,
			Procs:       p.Procs,
			Strategy:    p.Strategy,
			Fingerprint: plan.Fingerprint(p, nil),
			Arrays:      append([]plan.ArraySpec(nil), p.Arrays...),
		},
		arrays: make(map[string]int32, len(p.Arrays)),
		vars:   make(map[string]int32),
		bufs:   make(map[string]int32),
		vecs:   make(map[string]int32),
		live:   make(map[string]bool),
	}
	for i, a := range p.Arrays {
		if _, dup := c.arrays[a.Name]; dup {
			return nil, fmt.Errorf("bytecode: duplicate array %q", a.Name)
		}
		c.arrays[a.Name] = int32(i)
	}
	c.emit(Instr{Op: OpCkptInit})
	for i, n := range p.Body {
		label := int32(len(c.bc.Labels))
		c.bc.Labels = append(c.bc.Labels, plan.NodeLabel(n))
		c.bc.NodePC = append(c.bc.NodePC, int32(len(c.bc.Code)))
		c.emit(Instr{Op: OpNodeEnter, A: int32(i), B: label})
		loop, isLoop := n.(*plan.Loop)
		var err error
		if isLoop && plan.HasSumStore(loop.Body) {
			// A top-level SumStore loop checkpoints between iterations
			// (the reductions force globally uniform trip counts, making
			// the boundary collective-safe); its OpLoopCkpt carries the
			// node index the checkpoint cursor needs. With checkpointing
			// off the executor runs it exactly like OpLoop.
			err = c.compileLoop(loop, int32(i))
		} else {
			err = c.compileNode(n)
		}
		if err != nil {
			return nil, err
		}
		c.emit(Instr{Op: OpNodeExit, A: int32(i), B: label})
		if i+1 < len(p.Body) {
			c.emit(Instr{Op: OpCkpt, A: int32(i + 1)})
		}
	}
	if err := c.bc.Validate(); err != nil {
		return nil, fmt.Errorf("bytecode: compiled stream fails validation: %w", err)
	}
	return c.bc, nil
}

type compiler struct {
	bc     *Program
	arrays map[string]int32
	vars   map[string]int32
	bufs   map[string]int32
	vecs   map[string]int32
	// live tracks which loop variables are in scope at the current
	// compile point (the static mirror of the interpreter's set/delete
	// on its vars map).
	live map[string]bool
}

func (c *compiler) emit(ins Instr) int32 {
	c.bc.Code = append(c.bc.Code, ins)
	return int32(len(c.bc.Code) - 1)
}

func (c *compiler) arrayIdx(name, what string) (int32, error) {
	i, ok := c.arrays[name]
	if !ok {
		return 0, fmt.Errorf("bytecode: %s references unknown array %q", what, name)
	}
	return i, nil
}

// varDef brings a loop variable into scope, assigning its slot on first
// use. Shadowing is rejected: the interpreter's flat variable map would
// silently clobber and then kill the outer binding.
func (c *compiler) varDef(name string) (int32, error) {
	if c.live[name] {
		return 0, fmt.Errorf("bytecode: loop variable %q shadows a live loop variable", name)
	}
	s, ok := c.vars[name]
	if !ok {
		s = int32(len(c.bc.VarNames))
		c.bc.VarNames = append(c.bc.VarNames, name)
		c.vars[name] = s
	}
	c.live[name] = true
	return s, nil
}

func (c *compiler) varRef(name, what string) (int32, error) {
	if !c.live[name] {
		return 0, fmt.Errorf("bytecode: %s %q is not a live loop variable", what, name)
	}
	return c.vars[name], nil
}

// bufDef assigns (or reuses) the slot a node binds a buffer name to.
func (c *compiler) bufDef(name string) int32 {
	s, ok := c.bufs[name]
	if !ok {
		s = int32(len(c.bc.BufNames))
		c.bc.BufNames = append(c.bc.BufNames, name)
		c.bufs[name] = s
	}
	return s
}

func (c *compiler) bufRef(name, what string) (int32, error) {
	s, ok := c.bufs[name]
	if !ok {
		return 0, fmt.Errorf("bytecode: %s references buffer %q before any definition", what, name)
	}
	return s, nil
}

func (c *compiler) vecDef(name string) int32 {
	s, ok := c.vecs[name]
	if !ok {
		s = int32(len(c.bc.VecNames))
		c.bc.VecNames = append(c.bc.VecNames, name)
		c.vecs[name] = s
	}
	return s
}

func (c *compiler) vecRef(name, what string) (int32, error) {
	s, ok := c.vecs[name]
	if !ok {
		return 0, fmt.Errorf("bytecode: %s references vector %q before any ZeroVec", what, name)
	}
	return s, nil
}

// compileLoop lowers a loop; ckptNode >= 0 marks a checkpoint-eligible
// top-level SumStore loop and names its node index.
func (c *compiler) compileLoop(n *plan.Loop, ckptNode int32) error {
	kind, arg, err := c.count(n.Count)
	if err != nil {
		return err
	}
	slot, err := c.varDef(n.Var)
	if err != nil {
		return err
	}
	ins := Instr{Op: OpLoop, A: slot, B: kind, C: arg}
	if ckptNode >= 0 {
		ins.Op = OpLoopCkpt
		ins.E = ckptNode
	}
	loopPC := c.emit(ins)
	for _, b := range n.Body {
		if err := c.compileNode(b); err != nil {
			return err
		}
	}
	end := c.emit(Instr{Op: OpEndLoop, A: loopPC})
	c.bc.Code[loopPC].D = end + 1
	c.live[n.Var] = false
	return nil
}

func (c *compiler) count(e plan.CountExpr) (kind, arg int32, err error) {
	switch {
	case e.SlabsOf != "":
		arg, err = c.arrayIdx(e.SlabsOf, "loop count slabs()")
		return CountSlabs, arg, err
	case e.ColsOf != "":
		arg, err = c.bufRef(e.ColsOf, "loop count cols()")
		return CountCols, arg, err
	default:
		return CountLit, int32(e.Lit), nil
	}
}

func (c *compiler) compileNode(n plan.Node) error {
	switch n := n.(type) {
	case *plan.Loop:
		return c.compileLoop(n, -1)

	case *plan.ReadSlab:
		arr, err := c.arrayIdx(n.Array, "ReadSlab")
		if err != nil {
			return err
		}
		idx, err := c.varRef(n.Index, "ReadSlab index")
		if err != nil {
			return err
		}
		ins := Instr{Op: OpLoadSlab, A: arr, B: idx, C: c.bufDef(n.Buf), E: -1}
		if n.Stream {
			ins.D = 1
			ins.E = int32(c.bc.Readers)
			c.bc.Readers++
		}
		c.emit(ins)
		return nil

	case *plan.NewStaging:
		arr, err := c.arrayIdx(n.Array, "NewStaging")
		if err != nil {
			return err
		}
		like, err := c.bufRef(n.RowsLike, "NewStaging rows-like")
		if err != nil {
			return err
		}
		c.emit(Instr{Op: OpNewStaging, A: arr, B: like, C: c.bufDef(n.Buf)})
		return nil

	case *plan.AutoStage:
		arr, err := c.arrayIdx(n.Array, "AutoStage")
		if err != nil {
			return err
		}
		c.emit(Instr{Op: OpAutoStage, A: arr})
		return nil

	case *plan.FlushStage:
		arr, err := c.arrayIdx(n.Array, "FlushStage")
		if err != nil {
			return err
		}
		c.emit(Instr{Op: OpFlushStage, A: arr})
		return nil

	case *plan.WriteBuf:
		arr, err := c.arrayIdx(n.Array, "WriteBuf")
		if err != nil {
			return err
		}
		buf, err := c.bufRef(n.Buf, "WriteBuf")
		if err != nil {
			return err
		}
		c.emit(Instr{Op: OpStoreSlab, A: arr, B: buf})
		return nil

	case *plan.ZeroVec:
		ins := Instr{Op: OpZeroVec, A: c.vecDef(n.Vec), B: -1, C: -1}
		if n.RowsLike != "" {
			like, err := c.bufRef(n.RowsLike, "ZeroVec rows-like")
			if err != nil {
				return err
			}
			ins.B = like
		} else {
			arr, err := c.arrayIdx(n.RowsOfArray, "ZeroVec")
			if err != nil {
				return err
			}
			ins.C = arr
		}
		c.emit(ins)
		return nil

	case *plan.Axpy:
		vec, err := c.vecRef(n.Vec, "Axpy")
		if err != nil {
			return err
		}
		a, err := c.bufRef(n.A, "Axpy")
		if err != nil {
			return err
		}
		aCol, err := c.varRef(n.ACol, "Axpy column variable")
		if err != nil {
			return err
		}
		b, err := c.bufRef(n.B, "Axpy")
		if err != nil {
			return err
		}
		bCol, err := c.varRef(n.BCol, "Axpy column variable")
		if err != nil {
			return err
		}
		ins := Instr{Op: OpAxpy, A: vec, B: a, C: aCol, D: b, E: -1, F: -1, G: -1, H: bCol}
		if n.BRowBase != "" {
			if ins.E, err = c.varRef(n.BRowBase, "Axpy row variable"); err != nil {
				return err
			}
			if n.BRowScale != "" {
				if ins.F, err = c.arrayIdx(n.BRowScale, "Axpy slab width"); err != nil {
					return err
				}
			}
		}
		if n.BRowPlus != "" {
			if ins.G, err = c.varRef(n.BRowPlus, "Axpy row variable"); err != nil {
				return err
			}
		}
		c.emit(ins)
		return nil

	case *plan.SumStore:
		vec, err := c.vecRef(n.Vec, "SumStore")
		if err != nil {
			return err
		}
		arr, err := c.arrayIdx(n.Array, "SumStore")
		if err != nil {
			return err
		}
		c.emit(Instr{Op: OpSumStore, A: vec, B: arr})
		return nil

	case *plan.ResetCounter:
		c.emit(Instr{Op: OpResetCounter})
		return nil

	case *plan.NewSlab:
		arr, err := c.arrayIdx(n.Array, "NewSlab")
		if err != nil {
			return err
		}
		idx, err := c.varRef(n.Index, "NewSlab index")
		if err != nil {
			return err
		}
		c.emit(Instr{Op: OpNewSlab, A: arr, B: idx, C: c.bufDef(n.Buf)})
		return nil

	case *plan.Ewise:
		out, err := c.bufRef(n.Out, "Ewise output")
		if err != nil {
			return err
		}
		expr, err := c.compileExpr(n.Expr, false)
		if err != nil {
			return err
		}
		c.emit(Instr{Op: OpEwise, A: out, B: expr, C: int32(n.Expr.Ops())})
		return nil

	case *plan.ShiftEwise:
		out, err := c.arrayIdx(n.Out, "ShiftEwise output")
		if err != nil {
			return err
		}
		expr, err := c.compileExpr(n.Expr, true)
		if err != nil {
			return err
		}
		c.emit(Instr{Op: OpShiftEwise, A: out, B: expr,
			C: int32(n.Lo), D: int32(n.Hi),
			E: int32(n.GhostLeft), F: int32(n.GhostRight), G: int32(n.Expr.Ops())})
		return nil

	case *plan.Redistribute:
		src, err := c.arrayIdx(n.Src, "Redistribute source")
		if err != nil {
			return err
		}
		dst, err := c.arrayIdx(n.Dst, "Redistribute destination")
		if err != nil {
			return err
		}
		method, err := collio.ParseMethod(n.Method)
		if err != nil {
			return fmt.Errorf("bytecode: %w", err)
		}
		var tr int32
		if n.Transpose {
			tr = 1
		}
		c.emit(Instr{Op: OpAllToAll, A: src, B: dst, C: tr, D: int32(method), E: int32(n.MemElems)})
		return nil

	default:
		return fmt.Errorf("bytecode: unknown node %T", n)
	}
}

// compileExpr flattens an elementwise expression to postfix: left
// subtree, right subtree, operator. The executor's stack evaluation then
// performs the identical sequence of float operations the recursive tree
// evaluation performs. shift selects the ShiftEwise leaf set (shifted
// array reads) over the Ewise one (aligned buffer reads).
func (c *compiler) compileExpr(e plan.EExpr, shift bool) (int32, error) {
	var code []ExprInstr
	var walk func(e plan.EExpr) error
	walk = func(e plan.EExpr) error {
		switch e := e.(type) {
		case *plan.EConst:
			code = append(code, ExprInstr{Op: EPushConst, Val: e.V})
			return nil
		case *plan.EBuf:
			if shift {
				return fmt.Errorf("bytecode: aligned buffer reference %q inside a shifted FORALL", e.Buf)
			}
			s, err := c.bufRef(e.Buf, "elementwise expression")
			if err != nil {
				return err
			}
			code = append(code, ExprInstr{Op: EPushBuf, A: s})
			return nil
		case *plan.EBufShift:
			if !shift {
				return fmt.Errorf("bytecode: shifted reference to %q outside a shifted FORALL", e.Array)
			}
			arr, err := c.arrayIdx(e.Array, "shifted FORALL")
			if err != nil {
				return err
			}
			code = append(code, ExprInstr{Op: EPushShift, A: arr, B: int32(e.Shift)})
			return nil
		case *plan.EBin:
			if err := walk(e.L); err != nil {
				return err
			}
			if err := walk(e.R); err != nil {
				return err
			}
			var op ExprOp
			switch e.Op {
			case '+':
				op = EAdd
			case '-':
				op = ESub
			case '*':
				op = EMul
			case '/':
				op = EDiv
			default:
				return fmt.Errorf("bytecode: unknown elementwise operator %q", e.Op)
			}
			code = append(code, ExprInstr{Op: op})
			return nil
		default:
			return fmt.Errorf("bytecode: unknown elementwise expression %T", e)
		}
	}
	if err := walk(e); err != nil {
		return 0, err
	}
	c.bc.Exprs = append(c.bc.Exprs, code)
	return int32(len(c.bc.Exprs) - 1), nil
}
