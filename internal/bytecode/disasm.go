package bytecode

import (
	"fmt"
	"strings"

	"github.com/ooc-hpf/passion/internal/collio"
)

// Disassemble renders the program as human-readable bytecode: a header,
// the operand tables, the expression programs, then one line per
// instruction with its pc, opcode and symbolically resolved operands.
// ooc-compile -bytecode prints it so the lowering of any plan can be
// inspected next to its pseudo-code.
func (p *Program) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; %s: N=%d over %d processors, strategy=%s\n", p.Name, p.N, p.Procs, p.Strategy)
	fmt.Fprintf(&b, "; fingerprint=%s version=%d\n", p.Fingerprint, Version)
	for i, a := range p.Arrays {
		fmt.Fprintf(&b, "; array[%d] %s(%dx%d) slab=%d elems (%s)\n", i, a.Name, a.Rows, a.Cols, a.SlabElems, a.SlabDim)
	}
	if len(p.VarNames) > 0 {
		fmt.Fprintf(&b, "; vars: %s\n", strings.Join(p.VarNames, ", "))
	}
	if len(p.BufNames) > 0 {
		fmt.Fprintf(&b, "; bufs: %s\n", strings.Join(p.BufNames, ", "))
	}
	if len(p.VecNames) > 0 {
		fmt.Fprintf(&b, "; vecs: %s\n", strings.Join(p.VecNames, ", "))
	}
	for i, code := range p.Exprs {
		fmt.Fprintf(&b, "; expr[%d]:", i)
		for _, ins := range code {
			switch ins.Op {
			case EPushConst:
				fmt.Fprintf(&b, " push %g", ins.Val)
			case EPushBuf:
				fmt.Fprintf(&b, " push %s", p.bufName(ins.A))
			case EPushShift:
				fmt.Fprintf(&b, " push %s[%+d]", p.arrayName(ins.A), ins.B)
			case EAdd:
				b.WriteString(" add")
			case ESub:
				b.WriteString(" sub")
			case EMul:
				b.WriteString(" mul")
			case EDiv:
				b.WriteString(" div")
			default:
				fmt.Fprintf(&b, " %s", ins.Op)
			}
		}
		b.WriteByte('\n')
	}
	indent := 0
	for pc, ins := range p.Code {
		if ins.Op == OpEndLoop && indent > 0 {
			indent--
		}
		fmt.Fprintf(&b, "%4d  %s%-13s%s\n", pc, strings.Repeat("  ", indent), ins.Op, p.operands(ins))
		if ins.Op == OpLoop || ins.Op == OpLoopCkpt {
			indent++
		}
	}
	return b.String()
}

func (p *Program) arrayName(i int32) string {
	if i >= 0 && int(i) < len(p.Arrays) {
		return p.Arrays[i].Name
	}
	return fmt.Sprintf("array?%d", i)
}

func (p *Program) bufName(i int32) string {
	if i >= 0 && int(i) < len(p.BufNames) {
		return p.BufNames[i]
	}
	return fmt.Sprintf("buf?%d", i)
}

func (p *Program) varName(i int32) string {
	if i >= 0 && int(i) < len(p.VarNames) {
		return p.VarNames[i]
	}
	return fmt.Sprintf("var?%d", i)
}

func (p *Program) vecName(i int32) string {
	if i >= 0 && int(i) < len(p.VecNames) {
		return p.VecNames[i]
	}
	return fmt.Sprintf("vec?%d", i)
}

func (p *Program) labelName(i int32) string {
	if i >= 0 && int(i) < len(p.Labels) {
		return p.Labels[i]
	}
	return fmt.Sprintf("label?%d", i)
}

// operands renders one instruction's operand list symbolically.
func (p *Program) operands(ins Instr) string {
	switch ins.Op {
	case OpCkptInit:
		return ""
	case OpNodeEnter, OpNodeExit:
		return fmt.Sprintf(" node=%d %q", ins.A, p.labelName(ins.B))
	case OpCkpt:
		return fmt.Sprintf(" cursor=(%d,0)", ins.A)
	case OpLoop, OpLoopCkpt:
		count := ""
		switch ins.B {
		case CountLit:
			count = fmt.Sprintf("%d", ins.C)
		case CountSlabs:
			count = "slabs(" + p.arrayName(ins.C) + ")"
		case CountCols:
			count = "cols(" + p.bufName(ins.C) + ")"
		}
		s := fmt.Sprintf(" %s=0..%s-1 exit=%d", p.varName(ins.A), count, ins.D)
		if ins.Op == OpLoopCkpt {
			s += fmt.Sprintf(" ckpt-node=%d", ins.E)
		}
		return s
	case OpEndLoop:
		return fmt.Sprintf(" loop=%d", ins.A)
	case OpLoadSlab:
		s := fmt.Sprintf(" %s[%s] -> %s", p.arrayName(ins.A), p.varName(ins.B), p.bufName(ins.C))
		if ins.D == 1 {
			s += fmt.Sprintf(" stream reader=%d", ins.E)
		}
		return s
	case OpNewStaging:
		return fmt.Sprintf(" %s rows-like %s -> %s", p.arrayName(ins.A), p.bufName(ins.B), p.bufName(ins.C))
	case OpAutoStage, OpFlushStage:
		return " " + p.arrayName(ins.A)
	case OpStoreSlab:
		return fmt.Sprintf(" %s <- %s", p.arrayName(ins.A), p.bufName(ins.B))
	case OpZeroVec:
		if ins.B >= 0 {
			return fmt.Sprintf(" %s rows-like %s", p.vecName(ins.A), p.bufName(ins.B))
		}
		return fmt.Sprintf(" %s rows-of %s", p.vecName(ins.A), p.arrayName(ins.C))
	case OpAxpy:
		row := ""
		if ins.E >= 0 {
			row = p.varName(ins.E)
			if ins.F >= 0 {
				row += "*slab_width(" + p.arrayName(ins.F) + ")"
			}
		}
		if ins.G >= 0 {
			if row != "" {
				row += "+"
			}
			row += p.varName(ins.G)
		}
		if row == "" {
			row = "0"
		}
		return fmt.Sprintf(" %s += %s(:,%s) * %s(%s,%s)",
			p.vecName(ins.A), p.bufName(ins.B), p.varName(ins.C), p.bufName(ins.D), row, p.varName(ins.H))
	case OpSumStore:
		return fmt.Sprintf(" %s -> %s", p.vecName(ins.A), p.arrayName(ins.B))
	case OpResetCounter:
		return ""
	case OpNewSlab:
		return fmt.Sprintf(" %s[%s] -> %s", p.arrayName(ins.A), p.varName(ins.B), p.bufName(ins.C))
	case OpEwise:
		return fmt.Sprintf(" %s = expr[%d] ops/elem=%d", p.bufName(ins.A), ins.B, ins.C)
	case OpShiftEwise:
		return fmt.Sprintf(" %s = expr[%d] cols=[%d,%d] ghosts=(%d,%d) ops/elem=%d",
			p.arrayName(ins.A), ins.B, ins.C, ins.D, ins.E, ins.F, ins.G)
	case OpAllToAll:
		op := "redistribute"
		if ins.C == 1 {
			op = "transpose"
		}
		return fmt.Sprintf(" %s %s -> %s method=%s mem=%d",
			op, p.arrayName(ins.A), p.arrayName(ins.B), collio.Method(ins.D), ins.E)
	default:
		return fmt.Sprintf(" A=%d B=%d C=%d D=%d E=%d F=%d G=%d H=%d",
			ins.A, ins.B, ins.C, ins.D, ins.E, ins.F, ins.G, ins.H)
	}
}
