// Package bytecode lowers compiled node programs (plan.Program) to a
// flat, versioned, serializable per-rank opcode stream executed by a
// tight fetch-decode loop in package exec. The tree-walking interpreter
// re-dispatches through the plan node switch on every slab iteration,
// re-resolving names through maps each time; the bytecode compiler
// resolves every operand once — loop variables, slab buffers and
// accumulation vectors become slot indices, arrays become table indices
// with their distribution and strip-mining decisions attached,
// redistribution methods are pre-parsed, elementwise expressions are
// flattened to postfix programs — so the hot path is an integer-indexed
// dispatch over a fixed instruction array.
//
// The lowering is semantics-preserving to the bit: a program executed
// through its bytecode performs the identical sequence of file, message
// and arithmetic operations as the tree walk, commits checkpoints at the
// same (node, iteration) cursors, and emits the same trace spans, so
// simulated seconds, statistics counters and trace.Reconcile agree
// exactly between the two execution paths (pinned by the equivalence
// matrix in package exec).
//
// A Program has a stable binary encoding (magic, version, CRC-framed;
// see Encode/Decode) so compiled plans can be persisted and replayed —
// the artifact the serving layer's plan cache stores and the prerequisite
// for cross-restart cache persistence keyed on plan.Fingerprint.
package bytecode

import (
	"fmt"

	"github.com/ooc-hpf/passion/internal/plan"
)

// Version is the current encoding version. Decode rejects any other.
const Version = 1

// Op is one opcode of the flat instruction stream.
type Op uint8

// The opcode set. Structural opcodes (NODE_ENTER/NODE_EXIT/CKPT*/LOOP*/
// END_LOOP) carry the control and instrumentation skeleton of the
// original top-level statement list; the rest map one-to-one onto plan
// nodes with preresolved operands.
const (
	// OpInvalid is the zero value; a decoded stream must never contain it.
	OpInvalid Op = iota
	// OpCkptInit commits the initial checkpoint at cursor (0,0) when
	// checkpointing is on and the run is not a stats-exact resume. It is
	// only reached when execution starts from the top.
	OpCkptInit
	// OpNodeEnter marks the start of top-level node A (label Labels[B]):
	// the executor records the node-start clock, and resume jumps land
	// here (NodePC[A] points at this instruction).
	OpNodeEnter
	// OpNodeExit closes top-level node A, emitting the KindNode span when
	// the simulated clock advanced.
	OpNodeExit
	// OpCkpt commits a checkpoint at cursor (A, 0) when checkpointing is
	// on (the between-top-level-statements boundary).
	OpCkpt
	// OpLoop begins a loop: variable slot A runs from 0 over the count
	// described by (B=CountKind, C=arg); D is the pc just past the
	// matching OpEndLoop (the jump target when the trip count is zero).
	OpLoop
	// OpLoopCkpt is OpLoop for a top-level SumStore loop at node index E:
	// with checkpointing on, a checkpoint with cursor (E, v) commits
	// between iterations whenever v is a multiple of the spec's Every.
	OpLoopCkpt
	// OpEndLoop closes the innermost loop (its OpLoop sits at pc A):
	// advance the iteration, jump back to A+1 or fall through.
	OpEndLoop
	// OpLoadSlab reads slab vars[B] of array A into buffer slot C
	// (plan.ReadSlab). D=1 marks a compiler-proven sequential scan served
	// through prefetch-capable reader E.
	OpLoadSlab
	// OpNewStaging allocates a staging buffer for array A covering the
	// local rows of buffer B and all local columns, binding it to buffer
	// slot C and as A's staging target (plan.NewStaging).
	OpNewStaging
	// OpAutoStage enables counter-driven staging for array A
	// (plan.AutoStage).
	OpAutoStage
	// OpFlushStage writes array A's pending staging buffer
	// (plan.FlushStage).
	OpFlushStage
	// OpStoreSlab writes buffer B back to its section of array A
	// (plan.WriteBuf).
	OpStoreSlab
	// OpZeroVec clears vector slot A, sized to the rows of buffer B, or
	// to the local rows of array C when B is -1 (plan.ZeroVec).
	OpZeroVec
	// OpAxpy accumulates vec[A] += bufs[B][:, vars[C]] * bufs[D][row,
	// vars[H]] with row = vars[E]*slabWidth(F) + vars[G]; E, F and G are
	// -1 when absent (plan.Axpy).
	OpAxpy
	// OpSumStore reduces vector A to the owner of the current global
	// column of array B and stores it into B's staging buffer; the
	// implicit counter advances (plan.SumStore).
	OpSumStore
	// OpResetCounter clears the implicit global column counter
	// (plan.ResetCounter).
	OpResetCounter
	// OpNewSlab allocates a zeroed output buffer positioned like slab
	// vars[B] of array A into buffer slot C (plan.NewSlab).
	OpNewSlab
	// OpEwise evaluates expression program B elementwise into buffer A,
	// charging C arithmetic operations per element (plan.Ewise).
	OpEwise
	// OpShiftEwise executes the shifted FORALL into array A: ghost
	// exchange, then a slab sweep evaluating expression program B for
	// global columns C..D with halo widths E (left) and F (right),
	// charging G operations per element (plan.ShiftEwise).
	OpShiftEwise
	// OpAllToAll redistributes array A into array B through the
	// collective I/O layer: C=1 transposes the global indices, D is the
	// pre-parsed collio method, E the per-processor memory budget
	// (plan.Redistribute).
	OpAllToAll

	opCount // number of defined opcodes; keep last
)

var opNames = [...]string{
	OpInvalid:      "INVALID",
	OpCkptInit:     "CKPT_INIT",
	OpNodeEnter:    "NODE_ENTER",
	OpNodeExit:     "NODE_EXIT",
	OpCkpt:         "CKPT",
	OpLoop:         "LOOP",
	OpLoopCkpt:     "LOOP_CKPT",
	OpEndLoop:      "END_LOOP",
	OpLoadSlab:     "LOAD_SLAB",
	OpNewStaging:   "NEW_STAGING",
	OpAutoStage:    "AUTO_STAGE",
	OpFlushStage:   "FLUSH_STAGE",
	OpStoreSlab:    "STORE_SLAB",
	OpZeroVec:      "ZERO_VEC",
	OpAxpy:         "AXPY",
	OpSumStore:     "SUM_STORE",
	OpResetCounter: "RESET_COUNTER",
	OpNewSlab:      "NEW_SLAB",
	OpEwise:        "EWISE",
	OpShiftEwise:   "SHIFT_EWISE",
	OpAllToAll:     "ALLTOALL",
}

// String names the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Count kinds of OpLoop/OpLoopCkpt operand B: how the trip count is
// resolved at loop entry.
const (
	// CountLit: the count is the literal in C.
	CountLit int32 = iota
	// CountSlabs: the count is the slab count of array C's decomposition.
	CountSlabs
	// CountCols: the count is the column count of buffer C.
	CountCols
)

// Instr is one fixed-width instruction. Operand meaning is per-opcode
// (see the Op constants); unused operands are zero, absent optional
// operands are -1.
type Instr struct {
	Op                     Op
	A, B, C, D, E, F, G, H int32
}

// ExprOp is one opcode of a postfix expression program (the lowered form
// of plan.EExpr, evaluated column-at-a-time by the executor over a small
// buffer stack with in-place left-operand mutation — the same float
// operation sequence as the recursive tree evaluation).
type ExprOp uint8

// Expression opcodes.
const (
	// EInvalid is the zero value; never present in a valid program.
	EInvalid ExprOp = iota
	// EPushConst pushes a column filled with Val (plan.EConst).
	EPushConst
	// EPushBuf pushes a copy of the current column of buffer slot A
	// (plan.EBuf; elementwise context only).
	EPushBuf
	// EPushShift pushes column c+B of array A, read through the halo
	// section or the exchanged ghosts (plan.EBufShift; shift context
	// only).
	EPushShift
	// EAdd, ESub, EMul and EDiv pop the right operand, combine it into
	// the left in place, and release the right operand's buffer.
	EAdd
	ESub
	EMul
	EDiv

	exprOpCount // keep last
)

var exprOpNames = [...]string{
	EInvalid:   "EINVALID",
	EPushConst: "PUSH_CONST",
	EPushBuf:   "PUSH_BUF",
	EPushShift: "PUSH_SHIFT",
	EAdd:       "ADD",
	ESub:       "SUB",
	EMul:       "MUL",
	EDiv:       "DIV",
}

// String names the expression opcode.
func (o ExprOp) String() string {
	if int(o) < len(exprOpNames) && exprOpNames[o] != "" {
		return exprOpNames[o]
	}
	return fmt.Sprintf("eop(%d)", uint8(o))
}

// ExprInstr is one postfix expression instruction.
type ExprInstr struct {
	Op   ExprOp
	A, B int32
	Val  float64
}

// Program is a compiled per-rank opcode stream with its resolved operand
// tables. It is immutable after Compile/Decode and safe to share across
// concurrent executions, like the plan.Program it was lowered from.
type Program struct {
	// Name, N, Procs and Strategy mirror the source plan's header.
	Name     string
	N, Procs int
	Strategy string
	// Fingerprint is plan.Fingerprint of the lowered program (no
	// extras): the identity the executor verifies before running this
	// stream against a plan, and the key a persisted cache stores it
	// under.
	Fingerprint string
	// Arrays is the array table: every out-of-core array with its
	// distribution and strip-mining decision, in plan order. Instruction
	// operands index it.
	Arrays []plan.ArraySpec
	// VarNames, BufNames and VecNames name the slots, for disassembly
	// and error reporting.
	VarNames []string
	BufNames []string
	VecNames []string
	// Labels holds the KindNode span labels of the top-level nodes.
	Labels []string
	// Exprs is the table of postfix expression programs referenced by
	// OpEwise/OpShiftEwise.
	Exprs [][]ExprInstr
	// Code is the instruction stream.
	Code []Instr
	// NodePC maps each top-level node index to the pc of its OpNodeEnter
	// — the resume jump table for checkpoint cursors.
	NodePC []int32
	// Readers is the number of prefetch-capable reader slots (one per
	// stream-marked OpLoadSlab instruction).
	Readers int
}
