// Package cliutil holds small helpers shared by the command-line tools.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseInts parses a comma-separated integer list; an empty string yields
// nil.
func ParseInts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// RatioLabel renders a slab-ratio denominator the way the paper writes it
// ("1", "1/2", "1/8").
func RatioLabel(denom int) string {
	if denom == 1 {
		return "1"
	}
	return fmt.Sprintf("1/%d", denom)
}

// FormatBytes renders a byte count with a binary unit suffix.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
