package cliutil

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/exec"
	"github.com/ooc-hpf/passion/internal/gaxpy"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/mp"
	"github.com/ooc-hpf/passion/internal/oocarray"
	"github.com/ooc-hpf/passion/internal/sim"
)

// RunFlags is the one flags→exec.Options mapping shared by every entry
// point that executes a compiled program — ooc-run, ooc-serve and the
// ooc-bench serve harness all Build the same way, so a job submitted to
// the server runs under exactly the options the CLI would have used.
type RunFlags struct {
	Sieve    bool
	Prefetch bool
	Phantom  bool

	Chaos         float64
	ChaosCorrupt  float64
	ChaosDiskLoss float64
	ChaosSeed     int64
	LoseDisk      string
	Retries       int

	Checkpoint int
	Parity     bool
	KillRank   string
	Watchdog   time.Duration
}

// Register declares the shared execution flags on fs (nil means the
// process-wide default set).
func (f *RunFlags) Register(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.BoolVar(&f.Sieve, "sieve", false, "use data sieving for discontiguous slabs")
	fs.BoolVar(&f.Prefetch, "prefetch", false, "overlap slab reads with computation")
	fs.BoolVar(&f.Phantom, "phantom", false, "accounting-only mode (no data, no verification)")
	fs.Float64Var(&f.Chaos, "chaos", 0, "probability of a transient fault per file operation")
	fs.Float64Var(&f.ChaosCorrupt, "chaos-corrupt", 0, "probability of a flipped bit per file read")
	fs.Float64Var(&f.ChaosDiskLoss, "chaos-disk-loss", 0, "probability that a file operation takes down its whole logical disk")
	fs.StringVar(&f.LoseDisk, "lose-disk", "", "lose the disk holding FILE at its OPth operation, as FILE@OP (e.g. c.p1.laf@40)")
	fs.Int64Var(&f.ChaosSeed, "chaos-seed", 1, "seed of the deterministic fault injection")
	fs.IntVar(&f.Retries, "retries", -1, "retry budget per I/O operation (-1: default policy when faults are injected)")
	fs.IntVar(&f.Checkpoint, "checkpoint", 0, "checkpoint every K eligible slab-loop iterations (0: off)")
	fs.BoolVar(&f.Parity, "parity", false, "protect local array files with rotated XOR parity (survives one lost disk)")
	fs.StringVar(&f.KillRank, "kill-rank", "", "fail-stop RANK at its OPth message/IO operation, as RANK@OP (e.g. 1@200); surviving it needs -checkpoint and -parity")
	fs.DurationVar(&f.Watchdog, "watchdog", 0, "deadlock watchdog: fail with a blocked-op dump after this much simulated-clock quiet time (0: off)")
}

// Build materializes the flags into execution options over the backing
// store base (nil means a fresh in-memory file system). resume forces a
// checkpoint spec so exec.Resume finds one. The returned ChaosFS is
// non-nil exactly when fault injection wrapped the store, for
// end-of-run injection reporting. The caller layers on whatever Build
// cannot know: Fill, Trace, and the failure Detector choice.
func (f *RunFlags) Build(base iosim.FS, resume bool) (exec.Options, *iosim.ChaosFS, error) {
	var opts exec.Options
	fs := base
	if fs == nil {
		fs = iosim.NewMemFS()
	}
	var schedule []iosim.ScheduledFault
	if f.LoseDisk != "" {
		sf, err := ParseFileOp(f.LoseDisk)
		if err != nil {
			return opts, nil, fmt.Errorf("-lose-disk: %w", err)
		}
		schedule = append(schedule, sf)
	}
	if f.KillRank != "" {
		ks, err := ParseRankOp(f.KillRank)
		if err != nil {
			return opts, nil, fmt.Errorf("-kill-rank: %w", err)
		}
		opts.Kill = append(opts.Kill, ks)
	}
	var chaosFS *iosim.ChaosFS
	if f.Chaos > 0 || f.ChaosCorrupt > 0 || f.ChaosDiskLoss > 0 || len(schedule) > 0 {
		chaosFS = iosim.NewChaosFS(fs, iosim.ChaosConfig{
			Seed:       f.ChaosSeed,
			PTransient: f.Chaos,
			PCorrupt:   f.ChaosCorrupt,
			PDiskLoss:  f.ChaosDiskLoss,
			Schedule:   schedule,
		})
		fs = chaosFS
	}
	if f.Retries >= 0 || chaosFS != nil {
		policy := iosim.DefaultRetryPolicy()
		if f.Retries >= 0 {
			policy.MaxRetries = f.Retries
		}
		opts.Resilience = iosim.NewResilience(policy)
	}
	if f.Checkpoint > 0 || resume {
		every := f.Checkpoint
		if every < 1 {
			every = 1
		}
		opts.Checkpoint = &exec.CheckpointSpec{Every: every}
	}
	opts.FS = fs
	opts.Phantom = f.Phantom
	opts.Runtime = oocarray.Options{Sieve: f.Sieve, Prefetch: f.Prefetch}
	opts.Parity = f.Parity
	opts.StallTimeout = f.Watchdog
	return opts, chaosFS, nil
}

// ParseRankOp parses a fail-stop kill point written RANK@OP.
func ParseRankOp(s string) (mp.KillSpec, error) {
	head, op, err := splitAtOp(s, "RANK@OP")
	if err != nil {
		return mp.KillSpec{}, err
	}
	rank, err := strconv.Atoi(head)
	if err != nil {
		return mp.KillSpec{}, fmt.Errorf("bad rank in %q", s)
	}
	return mp.KillSpec{Rank: rank, Op: op}, nil
}

// ParseFileOp parses a scheduled disk loss written FILE@OP.
func ParseFileOp(s string) (iosim.ScheduledFault, error) {
	file, op, err := splitAtOp(s, "FILE@OP")
	if err != nil {
		return iosim.ScheduledFault{}, err
	}
	return iosim.ScheduledFault{File: file, Op: op, Kind: iosim.KindDiskLoss}, nil
}

// splitAtOp splits "head@op", parsing the trailing operation index.
func splitAtOp(s, form string) (string, int64, error) {
	k := strings.LastIndex(s, "@")
	if k <= 0 {
		return "", 0, fmt.Errorf("want %s, got %q", form, s)
	}
	op, err := strconv.ParseInt(s[k+1:], 10, 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad operation index in %q", s)
	}
	return s[:k], op, nil
}

// MachineFor maps a machine-model name to its configuration factory.
func MachineFor(name string) (func(int) sim.Config, error) {
	switch name {
	case "", "delta":
		return sim.Delta, nil
	case "modern":
		return sim.Modern, nil
	default:
		return nil, fmt.Errorf("unknown machine %q (want delta or modern)", name)
	}
}

// FillsFor returns the deterministic input fills every entry point uses
// for a compiled program: the paper's GAXPY operands and the
// row-major-sequence transpose source. Patterns without canonical
// inputs (elementwise, shift) start from zeroed arrays, exactly as
// ooc-run always has.
func FillsFor(res *compiler.Result) map[string]func(gi, gj int) float64 {
	fills := map[string]func(gi, gj int) float64{}
	an := res.Analysis
	switch an.Pattern {
	case compiler.PatternGaxpy:
		fills[an.A] = gaxpy.FillA
		fills[an.B] = gaxpy.FillB
	case compiler.PatternTranspose:
		nn := res.Program.N
		fills[an.Transpose.Src] = func(gi, gj int) float64 { return float64(gi*nn + gj + 1) }
	}
	return fills
}
