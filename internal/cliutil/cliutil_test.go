package cliutil

import (
	"reflect"
	"testing"
)

func TestParseInts(t *testing.T) {
	cases := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{"", nil, false},
		{"  ", nil, false},
		{"4", []int{4}, false},
		{"4,16,32,64", []int{4, 16, 32, 64}, false},
		{" 8 , 2 ", []int{8, 2}, false},
		{"4,x", nil, true},
		{"4,,8", nil, true},
	}
	for _, c := range cases {
		got, err := ParseInts(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseInts(%q) error = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if !c.wantErr && !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseInts(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRatioLabel(t *testing.T) {
	if RatioLabel(1) != "1" || RatioLabel(8) != "1/8" {
		t.Error("ratio labels wrong")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		0:       "0 B",
		999:     "999 B",
		1 << 10: "1.00 KiB",
		1 << 20: "1.00 MiB",
		1 << 30: "1.00 GiB",
		3 << 19: "1.50 MiB",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}
