package cliutil

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// Version renders the build's identity from the embedded module build
// info: module version when released, else the VCS revision (with a
// -dirty suffix for modified trees), else "devel". All six command-line
// tools print it under -version, and ooc-serve reports it in /healthz.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev, modified string
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			rev = kv.Value
		case "vcs.modified":
			if kv.Value == "true" {
				modified = "-dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return rev + modified
	}
	return "devel"
}

// VersionLine renders the standard "-version" output for tool name.
func VersionLine(name string) string {
	line := fmt.Sprintf("%s %s", name, Version())
	if bi, ok := debug.ReadBuildInfo(); ok && bi.GoVersion != "" {
		line += " (" + strings.TrimSpace(bi.GoVersion) + ")"
	}
	return line
}
