package cliutil

import (
	"flag"
	"testing"
	"time"

	"github.com/ooc-hpf/passion/internal/compiler"
	"github.com/ooc-hpf/passion/internal/hpf"
	"github.com/ooc-hpf/passion/internal/iosim"
	"github.com/ooc-hpf/passion/internal/sim"
)

func TestParseRankOp(t *testing.T) {
	ks, err := ParseRankOp("1@200")
	if err != nil {
		t.Fatal(err)
	}
	if ks.Rank != 1 || ks.Op != 200 {
		t.Fatalf("got %+v, want rank 1 op 200", ks)
	}
	for _, bad := range []string{"", "1", "@200", "x@200", "1@y", "1@"} {
		if _, err := ParseRankOp(bad); err == nil {
			t.Errorf("ParseRankOp(%q): want error, got nil", bad)
		}
	}
}

func TestParseFileOp(t *testing.T) {
	sf, err := ParseFileOp("c.p1.laf@40")
	if err != nil {
		t.Fatal(err)
	}
	if sf.File != "c.p1.laf" || sf.Op != 40 || sf.Kind != iosim.KindDiskLoss {
		t.Fatalf("got %+v", sf)
	}
	if _, err := ParseFileOp("@7"); err == nil {
		t.Error("want error for missing file name")
	}
}

func TestMachineFor(t *testing.T) {
	for name, want := range map[string]sim.Config{
		"":       sim.Delta(4),
		"delta":  sim.Delta(4),
		"modern": sim.Modern(4),
	} {
		f, err := MachineFor(name)
		if err != nil {
			t.Fatalf("MachineFor(%q): %v", name, err)
		}
		if got := f(4); got != want {
			t.Errorf("MachineFor(%q)(4) = %+v, want %+v", name, got, want)
		}
	}
	if _, err := MachineFor("cray"); err == nil {
		t.Error("want error for unknown machine")
	}
}

func TestRegisterAndBuild(t *testing.T) {
	var rf RunFlags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	rf.Register(fs)
	err := fs.Parse([]string{
		"-sieve", "-prefetch",
		"-chaos", "0.01", "-chaos-seed", "7",
		"-lose-disk", "c.p1.laf@40",
		"-kill-rank", "1@200",
		"-checkpoint", "3", "-parity",
		"-watchdog", "5s",
	})
	if err != nil {
		t.Fatal(err)
	}
	opts, chaosFS, err := rf.Build(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if chaosFS == nil {
		t.Fatal("chaos probability set: want a ChaosFS")
	}
	if opts.FS != chaosFS {
		t.Error("options FS should be the chaos wrapper")
	}
	if opts.Resilience == nil {
		t.Error("fault injection without an explicit retry budget should still get the default policy")
	}
	if opts.Checkpoint == nil || opts.Checkpoint.Every != 3 {
		t.Errorf("checkpoint spec = %+v, want Every=3", opts.Checkpoint)
	}
	if !opts.Parity {
		t.Error("parity not carried over")
	}
	if len(opts.Kill) != 1 || opts.Kill[0].Rank != 1 || opts.Kill[0].Op != 200 {
		t.Errorf("kill spec = %+v", opts.Kill)
	}
	if !opts.Runtime.Sieve || !opts.Runtime.Prefetch {
		t.Errorf("runtime options = %+v", opts.Runtime)
	}
	if opts.StallTimeout != 5*time.Second {
		t.Errorf("watchdog = %v", opts.StallTimeout)
	}
}

func TestBuildDefaultsArePlain(t *testing.T) {
	var rf RunFlags
	rf.Retries = -1 // the flag default
	opts, chaosFS, err := rf.Build(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if chaosFS != nil {
		t.Error("no fault flags: want no ChaosFS")
	}
	if opts.Resilience != nil || opts.Checkpoint != nil || opts.Parity || len(opts.Kill) != 0 {
		t.Errorf("plain build grew extras: %+v", opts)
	}
	if opts.FS == nil {
		t.Error("nil base should become a fresh MemFS")
	}
}

func TestBuildResumeForcesCheckpoint(t *testing.T) {
	var rf RunFlags
	rf.Retries = -1
	opts, _, err := rf.Build(iosim.NewMemFS(), true)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Checkpoint == nil || opts.Checkpoint.Every != 1 {
		t.Errorf("resume without -checkpoint should default Every=1, got %+v", opts.Checkpoint)
	}
}

func TestBuildBadSpecs(t *testing.T) {
	var rf RunFlags
	rf.Retries = -1
	rf.LoseDisk = "nope"
	if _, _, err := rf.Build(nil, false); err == nil {
		t.Error("bad -lose-disk should fail Build")
	}
	rf = RunFlags{Retries: -1, KillRank: "x@1"}
	if _, _, err := rf.Build(nil, false); err == nil {
		t.Error("bad -kill-rank should fail Build")
	}
}

func TestFillsFor(t *testing.T) {
	res, err := compiler.CompileSource(hpf.GaxpySource, compiler.Options{
		N: 64, Procs: 4, MemElems: 1 << 12, Policy: compiler.PolicyWeighted,
	})
	if err != nil {
		t.Fatal(err)
	}
	fills := FillsFor(res)
	if fills[res.Analysis.A] == nil || fills[res.Analysis.B] == nil {
		t.Fatalf("gaxpy fills missing: have %d entries", len(fills))
	}

	res, err = compiler.CompileSource(hpf.TransposeSource, compiler.Options{
		N: 64, Procs: 4, MemElems: 1 << 12, Policy: compiler.PolicyWeighted,
	})
	if err != nil {
		t.Fatal(err)
	}
	fills = FillsFor(res)
	src := res.Analysis.Transpose.Src
	if fills[src] == nil {
		t.Fatal("transpose fill missing")
	}
	// Row-major sequence: element (i,j) of an n×n source is i*n+j+1.
	if got := fills[src](2, 3); got != float64(2*64+3+1) {
		t.Errorf("transpose fill(2,3) = %g", got)
	}
}
