package passion

// Integration tests that build and run every example and smoke-test the
// command-line tools as subprocesses, so `go test ./...` exercises the
// same entry points a user would.

import (
	"os/exec"
	"strings"
	"testing"
)

func runGo(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go %s failed: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are subprocess tests; skipped with -short")
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"./examples/quickstart", "quickstart: OK"},
		{"./examples/gaxpy", "all three variants verified"},
		{"./examples/jacobi", "exact match, OK"},
		{"./examples/transpose", "transpose verified: OK"},
		{"./examples/scaledupdate", "both statements verified exactly: OK"},
		{"./examples/lu", "all panel widths verified"},
		{"./examples/columnstencil", "stencil verified exactly"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(strings.TrimPrefix(tc.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out := runGo(t, "run", tc.dir)
			if !strings.Contains(out, tc.want) {
				t.Errorf("%s output missing %q:\n%s", tc.dir, tc.want, out)
			}
		})
	}
}

func TestToolsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("tool smoke tests are subprocesses; skipped with -short")
	}
	cases := []struct {
		args []string
		want []string
	}{
		{
			[]string{"run", "./cmd/ooc-compile", "-n", "64", "-procs", "4", "-mem", "2048"},
			[]string{"pattern: gaxpy", "* row-slab", "global_sum"},
		},
		{
			[]string{"run", "./cmd/ooc-compile", "testdata/gaxpy.hpf"},
			[]string{"pattern: gaxpy", "* row-slab"},
		},
		{
			[]string{"run", "./cmd/ooc-compile", "testdata/scaledupdate.hpf"},
			[]string{"pattern: elementwise", "* column-slab"},
		},
		{
			[]string{"run", "./cmd/ooc-compile", "-mem", "1024", "testdata/columnstencil.hpf"},
			[]string{"pattern: shifted", "shift_exchange"},
		},
		{
			[]string{"run", "./cmd/ooc-run", "-n", "64", "-procs", "4", "-mem", "1024"},
			[]string{"strategy row-slab", "verification: C matches"},
		},
		{
			[]string{"run", "./cmd/ooc-costs", "-n", "256", "-procs", "4", "-ratios", "8,1"},
			[]string{"row-slab", "Equations 3-6"},
		},
		{
			[]string{"run", "./cmd/ooc-bench", "-experiment", "eqcheck", "-n", "64", "-procs", "4", "-ratios", "2"},
			[]string{"all match: true"},
		},
		{
			[]string{"run", "./cmd/ooc-bench", "-experiment", "table1", "-n", "64", "-procs", "4", "-ratios", "2", "-machine", "modern"},
			[]string{"Table 1"},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.args[1], func(t *testing.T) {
			t.Parallel()
			out := runGo(t, tc.args...)
			for _, want := range tc.want {
				if !strings.Contains(out, want) {
					t.Errorf("go %s output missing %q:\n%s", strings.Join(tc.args, " "), want, out)
				}
			}
		})
	}
}
