package passion_test

// The public facade exercised exactly as a downstream user would: one
// import, compile, run, verify.

import (
	"fmt"
	"strings"
	"testing"

	passion "github.com/ooc-hpf/passion"
)

func TestPublicFacadeRoundTrip(t *testing.T) {
	s := passion.NewSession(4)
	out, err := s.CompileAndRun(passion.GaxpySource,
		passion.CompileOptions{N: 32, MemElems: 300, Policy: passion.PolicySearch},
		passion.ExecOptions{Fill: map[string]func(int, int) float64{
			"a": passion.GaxpyFillA,
			"b": passion.GaxpyFillB,
		}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Compiled.Program.Strategy != "row-slab" {
		t.Errorf("strategy = %s", out.Compiled.Program.Strategy)
	}
	c, err := out.Array("c")
	if err != nil {
		t.Fatal(err)
	}
	want := passion.GaxpyExpected(32)
	for j := 0; j < 32; j++ {
		for i := 0; i < 32; i++ {
			if c.At(i, j) != want(i, j) {
				t.Fatalf("C(%d,%d) wrong", i, j)
			}
		}
	}
}

func TestPublicFacadeDiskSession(t *testing.T) {
	s, err := passion.NewDiskSession(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.CompileAndRun(passion.EwiseSource,
		passion.CompileOptions{N: 16, MemElems: 200},
		passion.ExecOptions{Fill: map[string]func(int, int) float64{
			"x": func(i, j int) float64 { return 1 },
			"y": func(i, j int) float64 { return 2 },
		}})
	if err != nil {
		t.Fatal(err)
	}
	z, err := out.Array("z")
	if err != nil {
		t.Fatal(err)
	}
	if z.At(3, 3) != 3*1+2-1 { // alpha*x + y - 1
		t.Errorf("z = %g", z.At(3, 3))
	}
}

func TestPublicMachinesAndSpans(t *testing.T) {
	d, m := passion.DeltaMachine(8), passion.ModernMachine(8)
	if d.ComputeRate >= m.ComputeRate {
		t.Error("modern machine should be faster")
	}
	tr := passion.NewTracer(4)
	res, err := passion.CompileSource(passion.GaxpySource, passion.CompileOptions{N: 32, MemElems: 300})
	if err != nil {
		t.Fatal(err)
	}
	s := passion.NewSession(4)
	if _, err := s.Run(res.Program, passion.ExecOptions{Phantom: true, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	if len(tr.Spans()) == 0 {
		t.Error("no spans recorded through the facade")
	}
}

func TestPublicExperimentDispatch(t *testing.T) {
	text, _, err := passion.RunExperiment("eqcheck",
		passion.ExperimentParams{N: 64, Procs: []int{4}, Ratios: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "all match: true") {
		t.Errorf("eqcheck failed through the facade:\n%s", text)
	}
	if len(passion.ExperimentNames) < 7 {
		t.Errorf("experiments = %v", passion.ExperimentNames)
	}
}

func ExampleNewSession() {
	s := passion.NewSession(4)
	out, err := s.CompileAndRun(passion.GaxpySource,
		passion.CompileOptions{N: 32, MemElems: 300},
		passion.ExecOptions{Fill: map[string]func(int, int) float64{
			"a": passion.GaxpyFillA,
			"b": passion.GaxpyFillB,
		}})
	if err != nil {
		panic(err)
	}
	fmt.Println("strategy:", out.Compiled.Program.Strategy)
	// Output:
	// strategy: row-slab
}
